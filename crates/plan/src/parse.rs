//! Parsing EXPLAIN-style plan text back into [`PhysicalPlan`]s.
//!
//! The paper's fleet sweep "gather\[s\] the logs (i.e., STL_EXPLAIN table) on
//! the physical execution plans of executed queries" and parses them into
//! plan trees (§4.4). This module provides the equivalent for this
//! reproduction's textual plan format — the exact format
//! [`PhysicalPlan::explain`] emits — so plan logs can be exported, shipped,
//! and re-ingested for offline global-model training:
//!
//! ```text
//! Select plan:
//! XN Result  (cost=0.01 rows=2000 width=160)
//!   ->  XN Hash Join  (cost=900.00 rows=2000 width=160)
//!     ->  DS_BCAST_INNER  (cost=50.00 rows=1000 width=64)
//! ...
//! ```
//!
//! Nesting is conveyed by two-space indentation per level; scan nodes carry
//! optional `format=… table_rows=…` attributes.

use crate::operator::{OperatorKind, QueryType, S3Format};
use crate::tree::{PhysicalPlan, PlanNode};
use std::fmt;

/// A parse failure with a line number and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number in the input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "explain parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses the output of [`PhysicalPlan::explain`] back into a plan.
///
/// The parse is strict about structure (header, indentation, attribute
/// syntax) and round-trips exactly:
/// `parse_explain(&plan.explain()) == Ok(plan)` for every plan this crate
/// can build.
pub fn parse_explain(text: &str) -> Result<PhysicalPlan, ParseError> {
    let mut lines = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());

    // Header: "<QueryType> plan:"
    let (hline, header) = lines.next().ok_or_else(|| err(0, "empty input"))?;
    let query_type = parse_header(header).ok_or_else(|| {
        err(
            hline + 1,
            format!("expected '<QueryType> plan:', got {header:?}"),
        )
    })?;

    // Parse node lines into (depth, node) pairs.
    let mut flat: Vec<(usize, PlanNode)> = Vec::new();
    for (lno, raw) in lines {
        let line_no = lno + 1;
        let indent = raw.len() - raw.trim_start().len();
        if indent % 2 != 0 {
            return Err(err(line_no, "odd indentation"));
        }
        let depth = indent / 2;
        let mut body = raw.trim_start();
        if depth > 0 {
            body = body
                .strip_prefix("->  ")
                .ok_or_else(|| err(line_no, "nested node must start with '->  '"))?;
        }
        let node = parse_node_line(body, line_no)?;
        flat.push((depth, node));
    }

    if flat.is_empty() {
        return Err(err(hline + 1, "plan has no nodes"));
    }
    if flat[0].0 != 0 {
        return Err(err(hline + 2, "root must be at depth 0"));
    }

    // Rebuild the tree from the depth-annotated pre-order list.
    let mut iter = flat.into_iter();
    let (_, root_proto) = iter.next().expect("non-empty");
    let mut stack: Vec<(usize, PlanNode)> = vec![(0, root_proto)];
    for (depth, node) in iter {
        // Pop completed subtrees.
        while stack.len() > 1 && stack.last().expect("non-empty").0 >= depth {
            let (_, done) = stack.pop().expect("len > 1");
            stack
                .last_mut()
                .expect("stack never empties here")
                .1
                .children
                .push(done);
        }
        let parent_depth = stack.last().expect("non-empty").0;
        if depth != parent_depth + 1 {
            return Err(err(
                0,
                format!("invalid nesting: node at depth {depth} under depth {parent_depth}"),
            ));
        }
        stack.push((depth, node));
    }
    while stack.len() > 1 {
        let (_, done) = stack.pop().expect("len > 1");
        stack
            .last_mut()
            .expect("stack never empties here")
            .1
            .children
            .push(done);
    }
    let (_, root) = stack.pop().expect("root remains");
    Ok(PhysicalPlan::new(query_type, root))
}

fn parse_header(line: &str) -> Option<QueryType> {
    let name = line.trim().strip_suffix(" plan:")?;
    match name {
        "Select" => Some(QueryType::Select),
        "Insert" => Some(QueryType::Insert),
        "Update" => Some(QueryType::Update),
        "Delete" => Some(QueryType::Delete),
        "Other" => Some(QueryType::Other),
        _ => None,
    }
}

/// Parses `"<op name>  (cost=… rows=… width=…[ format=… table_rows=…])"`.
fn parse_node_line(body: &str, line_no: usize) -> Result<PlanNode, ParseError> {
    let open = body
        .find("  (")
        .ok_or_else(|| err(line_no, "missing attribute block"))?;
    let name = &body[..open];
    let attrs = body[open + 3..]
        .strip_suffix(')')
        .ok_or_else(|| err(line_no, "unterminated attribute block"))?;

    let op = OperatorKind::ALL
        .iter()
        .copied()
        .find(|o| o.name() == name)
        .ok_or_else(|| err(line_no, format!("unknown operator {name:?}")))?;

    let mut est_cost = None;
    let mut est_rows = None;
    let mut width = None;
    let mut s3_format = None;
    let mut table_rows = None;
    for kv in attrs.split_whitespace() {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("malformed attribute {kv:?}")))?;
        match k {
            "cost" => est_cost = Some(parse_f64(v, line_no)?),
            "rows" => est_rows = Some(parse_f64(v, line_no)?),
            "width" => width = Some(parse_f64(v, line_no)?),
            "table_rows" => table_rows = Some(parse_f64(v, line_no)?),
            "format" => {
                s3_format = Some(match v {
                    "Parquet" => S3Format::Parquet,
                    "OpenCsv" => S3Format::OpenCsv,
                    "Text" => S3Format::Text,
                    "Local" => S3Format::Local,
                    other => return Err(err(line_no, format!("unknown format {other:?}"))),
                })
            }
            other => return Err(err(line_no, format!("unknown attribute {other:?}"))),
        }
    }
    let (Some(est_cost), Some(est_rows), Some(width)) = (est_cost, est_rows, width) else {
        return Err(err(line_no, "cost/rows/width are required"));
    };
    Ok(PlanNode {
        op,
        est_cost,
        est_rows,
        width,
        s3_format,
        table_rows,
        children: Vec::new(),
    })
}

fn parse_f64(v: &str, line_no: usize) -> Result<f64, ParseError> {
    v.parse()
        .map_err(|_| err(line_no, format!("invalid number {v:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PlanBuilder;
    use proptest::prelude::*;

    fn sample_plan() -> PhysicalPlan {
        PlanBuilder::select()
            .scan("lineitem", S3Format::Local, 6e6, 120.0)
            .scan("orders", S3Format::Parquet, 1.5e6, 96.0)
            .hash_join(0.1)
            .hash_aggregate(0.01)
            .sort()
            .finish()
    }

    /// explain() rounds cost to 2 decimals and rows/width to integers, so
    /// round-trip equality needs a plan with representable values.
    fn quantize(plan: &PhysicalPlan) -> PhysicalPlan {
        fn q(node: &PlanNode) -> PlanNode {
            PlanNode {
                op: node.op,
                est_cost: (node.est_cost * 100.0).round() / 100.0,
                est_rows: node.est_rows.round(),
                width: node.width.round(),
                s3_format: node.s3_format,
                table_rows: node.table_rows.map(f64::round),
                children: node.children.iter().map(q).collect(),
            }
        }
        PhysicalPlan::new(plan.query_type, q(&plan.root))
    }

    #[test]
    fn round_trips_a_join_plan() {
        let plan = quantize(&sample_plan());
        let text = plan.explain();
        let back = parse_explain(&text).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn round_trips_all_query_types() {
        for qt in [
            QueryType::Select,
            QueryType::Insert,
            QueryType::Update,
            QueryType::Delete,
            QueryType::Other,
        ] {
            let mut plan = quantize(&sample_plan());
            plan.query_type = qt;
            assert_eq!(parse_explain(&plan.explain()).unwrap().query_type, qt);
        }
    }

    #[test]
    fn preserves_scan_metadata() {
        let plan = quantize(&sample_plan());
        let back = parse_explain(&plan.explain()).unwrap();
        let scans: Vec<_> = back
            .iter_preorder()
            .filter(|n| n.op.is_base_table_scan())
            .collect();
        assert_eq!(scans.len(), 2);
        assert!(scans.iter().any(|n| n.s3_format == Some(S3Format::Parquet)));
        assert!(scans.iter().all(|n| n.table_rows.is_some()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_explain("").is_err());
        assert!(parse_explain("nonsense").is_err());
        assert!(parse_explain("Select plan:\nXN Bogus  (cost=1 rows=1 width=1)").is_err());
        assert!(parse_explain("Select plan:\nXN Result  (cost=1 rows=1)").is_err());
        // Nested node without arrow.
        assert!(parse_explain(
            "Select plan:\nXN Result  (cost=1 rows=1 width=1)\n  XN Seq Scan  (cost=1 rows=1 width=1)"
        )
        .is_err());
        // Depth jump of 2.
        assert!(parse_explain(
            "Select plan:\nXN Result  (cost=1 rows=1 width=1)\n    ->  XN Seq Scan  (cost=1 rows=1 width=1)"
        )
        .is_err());
    }

    #[test]
    fn error_carries_line_numbers() {
        let e = parse_explain("Select plan:\nXN Result  (cost=x rows=1 width=1)").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("line 2"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_round_trip_random_plans(
            scans in proptest::collection::vec((1f64..1e7, 8f64..512.0), 1..5),
            agg in proptest::bool::ANY,
            sort in proptest::bool::ANY,
        ) {
            let mut b = PlanBuilder::select();
            for &(rows, width) in &scans {
                b = b.scan("t", S3Format::Local, rows.round(), width.round());
            }
            while b.pending() > 1 {
                b = b.hash_join(0.25);
            }
            if agg { b = b.hash_aggregate(0.125); }
            if sort { b = b.sort(); }
            let plan = quantize(&b.finish());
            let back = parse_explain(&plan.explain()).unwrap();
            prop_assert_eq!(back, plan);
        }
    }
}
