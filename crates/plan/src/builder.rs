//! Fluent construction of physical plan trees.
//!
//! The synthetic workload generator, tests, and examples all need to build
//! Redshift-shaped plans; [`PlanBuilder`] keeps that construction readable:
//!
//! ```
//! use stage_plan::{PlanBuilder, OperatorKind, QueryType, S3Format};
//!
//! let plan = PlanBuilder::select()
//!     .scan("lineitem", S3Format::Local, 6_000_000.0, 120.0)
//!     .scan("orders", S3Format::Local, 1_500_000.0, 96.0)
//!     .hash_join(0.1)
//!     .hash_aggregate(0.01)
//!     .sort()
//!     .finish();
//! assert_eq!(plan.join_count(), 1);
//! assert!(plan.node_count() >= 6);
//! ```
//!
//! The builder maintains a stack of sub-plans: scans push, joins pop two and
//! push one, unary operators transform the top of the stack. Costs are
//! synthesized from simple per-operator cost formulas so generated plans
//! resemble optimizer output; exact truth comes from the workload crate's
//! cost-truth model.

use crate::operator::{OperatorKind, QueryType, S3Format};
use crate::tree::{PhysicalPlan, PlanNode};

/// Stack-based plan builder. See the module docs for the protocol.
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    query_type: QueryType,
    stack: Vec<PlanNode>,
}

impl PlanBuilder {
    /// Starts a SELECT plan.
    pub fn select() -> Self {
        Self::new(QueryType::Select)
    }

    /// Starts a plan of the given statement type.
    pub fn new(query_type: QueryType) -> Self {
        Self {
            query_type,
            stack: Vec::new(),
        }
    }

    /// Pushes a base-table scan. `rows` is the estimated scan output
    /// cardinality (after any filter), `width` the tuple width in bytes.
    /// Table name is accepted for readability but not stored — plans carry
    /// only what the featurizers consume.
    pub fn scan(mut self, _table: &str, format: S3Format, rows: f64, width: f64) -> Self {
        let op = if format == S3Format::Local {
            OperatorKind::SeqScan
        } else {
            OperatorKind::S3Scan
        };
        let cost = rows * 0.01 * format.scan_cost_factor();
        // Table rows: assume the filter kept 10% when rows look filtered;
        // callers wanting exact table sizes use `scan_with_table_rows`.
        self.stack
            .push(PlanNode::leaf(op, cost, rows, width).with_table(format, rows));
        self
    }

    /// Pushes a base-table scan with an explicit full-table row count.
    pub fn scan_with_table_rows(
        mut self,
        format: S3Format,
        out_rows: f64,
        table_rows: f64,
        width: f64,
    ) -> Self {
        let op = if format == S3Format::Local {
            OperatorKind::SeqScan
        } else {
            OperatorKind::S3Scan
        };
        let cost = table_rows * 0.01 * format.scan_cost_factor();
        self.stack
            .push(PlanNode::leaf(op, cost, out_rows, width).with_table(format, table_rows));
        self
    }

    /// Pops two sub-plans and joins them with a hash join (build side =
    /// second-popped, wrapped in `Hash`, distributed via `DsBcast` when
    /// small, `DsDistKey` otherwise). `selectivity` scales the output
    /// cardinality relative to the larger input.
    pub fn hash_join(mut self, selectivity: f64) -> Self {
        let right = self.pop("hash_join needs two inputs");
        let left = self.pop("hash_join needs two inputs");
        let out_rows = (left.est_rows.max(right.est_rows) * selectivity).max(1.0);
        let width = left.width + right.width;

        let (build, probe) = if right.est_rows <= left.est_rows {
            (right, left)
        } else {
            (left, right)
        };
        let dist_op = if build.est_rows < 100_000.0 {
            OperatorKind::DsBcast
        } else {
            OperatorKind::DsDistKey
        };
        let dist = PlanNode::internal(
            dist_op,
            build.est_rows * 0.005,
            build.est_rows,
            build.width,
            vec![build],
        );
        let hash = PlanNode::internal(
            OperatorKind::Hash,
            dist.est_rows * 0.008,
            dist.est_rows,
            dist.width,
            vec![dist],
        );
        let cost = probe.est_rows * 0.012 + hash.est_rows * 0.002;
        self.stack.push(PlanNode::internal(
            OperatorKind::HashJoin,
            cost,
            out_rows,
            width,
            vec![probe, hash],
        ));
        self
    }

    /// Pops two sub-plans and merge-joins them.
    pub fn merge_join(mut self, selectivity: f64) -> Self {
        let right = self.pop("merge_join needs two inputs");
        let left = self.pop("merge_join needs two inputs");
        let out_rows = (left.est_rows.max(right.est_rows) * selectivity).max(1.0);
        let width = left.width + right.width;
        let cost = (left.est_rows + right.est_rows) * 0.006;
        self.stack.push(PlanNode::internal(
            OperatorKind::MergeJoin,
            cost,
            out_rows,
            width,
            vec![left, right],
        ));
        self
    }

    /// Pops two sub-plans and nested-loop joins them (cost is quadratic-ish).
    pub fn nested_loop_join(mut self, selectivity: f64) -> Self {
        let right = self.pop("nested_loop_join needs two inputs");
        let left = self.pop("nested_loop_join needs two inputs");
        let out_rows = (left.est_rows * right.est_rows * selectivity).max(1.0);
        let width = left.width + right.width;
        let cost = left.est_rows * right.est_rows * 1e-4;
        self.stack.push(PlanNode::internal(
            OperatorKind::NestedLoopJoin,
            cost,
            out_rows,
            width,
            vec![left, right],
        ));
        self
    }

    /// Applies a hash aggregation to the top sub-plan; `group_ratio` is the
    /// fraction of input rows surviving as groups.
    pub fn hash_aggregate(self, group_ratio: f64) -> Self {
        self.unary_scaled(OperatorKind::HashAggregate, group_ratio, 0.015)
    }

    /// Applies a scalar (ungrouped) aggregation producing one row.
    pub fn aggregate(mut self) -> Self {
        let input = self.pop("aggregate needs an input");
        let cost = input.est_rows * 0.008;
        let width = input.width.min(32.0);
        self.stack.push(PlanNode::internal(
            OperatorKind::Aggregate,
            cost,
            1.0,
            width,
            vec![input],
        ));
        self
    }

    /// Applies a full sort to the top sub-plan.
    pub fn sort(self) -> Self {
        self.unary_scaled(OperatorKind::Sort, 1.0, 0.02)
    }

    /// Applies a top-N sort.
    pub fn top_sort(mut self, limit: f64) -> Self {
        let input = self.pop("top_sort needs an input");
        let cost = input.est_rows * 0.012;
        let rows = limit.min(input.est_rows).max(1.0);
        let width = input.width;
        self.stack.push(PlanNode::internal(
            OperatorKind::TopSort,
            cost,
            rows,
            width,
            vec![input],
        ));
        self
    }

    /// Applies a window function.
    pub fn window(self) -> Self {
        self.unary_scaled(OperatorKind::WindowAgg, 1.0, 0.018)
    }

    /// Applies duplicate elimination.
    pub fn unique(self, keep_ratio: f64) -> Self {
        self.unary_scaled(OperatorKind::Unique, keep_ratio, 0.01)
    }

    /// Applies a LIMIT.
    pub fn limit(mut self, n: f64) -> Self {
        let input = self.pop("limit needs an input");
        let rows = n.min(input.est_rows).max(1.0);
        let width = input.width;
        self.stack.push(PlanNode::internal(
            OperatorKind::Limit,
            0.01,
            rows,
            width,
            vec![input],
        ));
        self
    }

    /// Pops all pending sub-plans and unions them (UNION ALL / Append).
    pub fn append_all(mut self) -> Self {
        // lint:allow(no-panic): builder-API misuse check — the stack shape is fixed by calling code, never by data
        assert!(
            !self.stack.is_empty(),
            "append_all needs at least one input"
        );
        let children = std::mem::take(&mut self.stack);
        let rows: f64 = children.iter().map(|c| c.est_rows).sum();
        let width = children.iter().map(|c| c.width).fold(0.0, f64::max);
        let cost = rows * 0.001;
        self.stack.push(PlanNode::internal(
            OperatorKind::Append,
            cost,
            rows,
            width,
            children,
        ));
        self
    }

    /// Wraps the top sub-plan in a DML operator matching the query type
    /// (INSERT/DELETE/UPDATE plans in Redshift end in a write step).
    pub fn dml(mut self) -> Self {
        let op = match self.query_type {
            QueryType::Insert => OperatorKind::Insert,
            QueryType::Delete => OperatorKind::Delete,
            QueryType::Update => OperatorKind::Update,
            _ => return self, // SELECT/Other: no write step
        };
        let input = self.pop("dml needs an input");
        let cost = input.est_rows * 0.02;
        let rows = input.est_rows;
        let width = input.width;
        self.stack
            .push(PlanNode::internal(op, cost, rows, width, vec![input]));
        self
    }

    /// Finalizes the plan: requires exactly one sub-plan on the stack, wraps
    /// it in a leader `Result` node.
    ///
    /// # Panics
    /// Panics if the stack does not hold exactly one sub-plan.
    pub fn finish(mut self) -> PhysicalPlan {
        // lint:allow(no-panic): builder-API misuse check — the stack shape is fixed by calling code, never by data (pinned by finish_rejects_multiple_pending)
        assert_eq!(
            self.stack.len(),
            1,
            "finish() requires exactly one sub-plan on the stack, found {}",
            self.stack.len()
        );
        // lint:allow(no-panic): non-empty just asserted above
        let child = self.stack.pop().expect("just checked");
        let rows = child.est_rows;
        let width = child.width;
        let root = PlanNode::internal(OperatorKind::Result, 0.01, rows, width, vec![child]);
        PhysicalPlan::new(self.query_type, root)
    }

    /// Number of pending sub-plans.
    pub fn pending(&self) -> usize {
        self.stack.len()
    }

    fn unary_scaled(mut self, op: OperatorKind, row_ratio: f64, cost_per_row: f64) -> Self {
        let input = self.pop("unary operator needs an input");
        let cost = input.est_rows * cost_per_row;
        let rows = (input.est_rows * row_ratio).max(1.0);
        let width = input.width;
        self.stack
            .push(PlanNode::internal(op, cost, rows, width, vec![input]));
        self
    }

    fn pop(&mut self, msg: &str) -> PlanNode {
        // lint:allow(no-panic): builder-API misuse check — pinned by join_requires_two_inputs / unary-input tests
        self.stack.pop().unwrap_or_else(|| panic!("{msg}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::plan_feature_vector;

    #[test]
    fn tpch_like_join_plan() {
        let plan = PlanBuilder::select()
            .scan("lineitem", S3Format::Local, 6e6, 120.0)
            .scan("orders", S3Format::Local, 1.5e6, 96.0)
            .hash_join(0.1)
            .hash_aggregate(0.01)
            .sort()
            .finish();
        assert_eq!(plan.query_type, QueryType::Select);
        assert_eq!(plan.join_count(), 1);
        // Result, Sort, HashAgg, HashJoin, probe scan, Hash, Dist, build scan
        assert_eq!(plan.node_count(), 8);
        assert!(plan.total_est_cost() > 0.0);
    }

    #[test]
    fn small_build_side_broadcasts() {
        let plan = PlanBuilder::select()
            .scan("big", S3Format::Local, 1e7, 64.0)
            .scan("small", S3Format::Local, 1e3, 32.0)
            .hash_join(0.5)
            .finish();
        let ops: Vec<_> = plan.iter_preorder().map(|n| n.op).collect();
        assert!(ops.contains(&OperatorKind::DsBcast));
        assert!(!ops.contains(&OperatorKind::DsDistKey));
    }

    #[test]
    fn large_build_side_distributes_by_key() {
        let plan = PlanBuilder::select()
            .scan("a", S3Format::Local, 1e7, 64.0)
            .scan("b", S3Format::Local, 5e6, 64.0)
            .hash_join(0.5)
            .finish();
        let ops: Vec<_> = plan.iter_preorder().map(|n| n.op).collect();
        assert!(ops.contains(&OperatorKind::DsDistKey));
    }

    #[test]
    fn dml_wraps_delete() {
        let plan = PlanBuilder::new(QueryType::Delete)
            .scan("t", S3Format::Local, 1e4, 64.0)
            .dml()
            .finish();
        let ops: Vec<_> = plan.iter_preorder().map(|n| n.op).collect();
        assert!(ops.contains(&OperatorKind::Delete));
    }

    #[test]
    fn dml_noop_for_select() {
        let plan = PlanBuilder::select()
            .scan("t", S3Format::Local, 1e4, 64.0)
            .dml()
            .finish();
        assert_eq!(plan.node_count(), 2); // Result + scan only
    }

    #[test]
    fn append_merges_all_pending() {
        let plan = PlanBuilder::select()
            .scan("a", S3Format::Local, 10.0, 8.0)
            .scan("b", S3Format::Local, 20.0, 8.0)
            .scan("c", S3Format::Local, 30.0, 8.0)
            .append_all()
            .finish();
        let append = plan
            .iter_preorder()
            .find(|n| n.op == OperatorKind::Append)
            .unwrap();
        assert_eq!(append.children.len(), 3);
        assert_eq!(append.est_rows, 60.0);
    }

    #[test]
    fn limit_caps_rows() {
        let plan = PlanBuilder::select()
            .scan("t", S3Format::Local, 1e6, 8.0)
            .limit(100.0)
            .finish();
        assert_eq!(plan.root.est_rows, 100.0);
    }

    #[test]
    #[should_panic(expected = "exactly one sub-plan")]
    fn finish_rejects_multiple_pending() {
        PlanBuilder::select()
            .scan("a", S3Format::Local, 1.0, 8.0)
            .scan("b", S3Format::Local, 1.0, 8.0)
            .finish();
    }

    #[test]
    #[should_panic(expected = "needs two inputs")]
    fn join_requires_two_inputs() {
        PlanBuilder::select()
            .scan("a", S3Format::Local, 1.0, 8.0)
            .hash_join(0.1);
    }

    #[test]
    fn identical_builders_produce_identical_vectors() {
        let build = || {
            PlanBuilder::select()
                .scan("l", S3Format::Parquet, 1e5, 100.0)
                .scan("o", S3Format::Local, 2e4, 50.0)
                .hash_join(0.2)
                .hash_aggregate(0.05)
                .finish()
        };
        let a = plan_feature_vector(&build());
        let b = plan_feature_vector(&build());
        assert_eq!(a.stable_hash(), b.stable_hash());
    }
}
