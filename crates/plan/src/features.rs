//! Plan featurization: the 33-dim flattened vector, its stable hash, and
//! per-node features for the global GCN model.
//!
//! **Flattened vector (cache + local model + AutoWLM).** Following §4.2 of
//! the paper, we traverse the plan tree, group operator nodes by category,
//! and sum their estimated cost and cardinality per category; query-type
//! one-hot features complete the vector:
//!
//! ```text
//! dims  0..28 : per-category (est_cost_sum, est_rows_sum) pairs, 14 categories
//! dims 28..33 : query-type one-hot (SELECT / INSERT / UPDATE / DELETE / other)
//! ```
//!
//! 14 × 2 + 5 = 33 dimensions, matching the paper's "33-dimensional vector".
//!
//! **Hash key (cache "Optimization 1").** Identical queries produce
//! bit-identical optimizer estimates, so the FNV-1a hash over the raw f64
//! bits is a stable cache key that avoids element-wise vector comparison.
//!
//! **Node features (global model, §4.4 / Fig. 5).** Each node is featurized
//! as operator one-hot (35 here vs. the paper's 90 — width-agnostic code),
//! log-scaled cost/cardinality/width, S3-format one-hot, and base-table row
//! count, with format/rows "Null" (zero + flag) for non-scan operators.

use crate::operator::{OperatorCategory, QueryType, S3Format};
use crate::tree::{PhysicalPlan, PlanNode};
use crate::OperatorKind;
use serde::{Deserialize, Serialize};

/// Dimensionality of the flattened cache/local-model feature vector.
pub const CACHE_FEATURE_DIM: usize = OperatorCategory::COUNT * 2 + QueryType::COUNT;

/// Dimensionality of the per-node feature vector consumed by the GCN:
/// operator one-hot + ln(1+cost) + ln(1+rows) + ln(1+width) + S3-format
/// one-hot + base-table flag + ln(1+table_rows).
pub const NODE_FEATURE_DIM: usize = OperatorKind::COUNT + 3 + S3Format::COUNT + 2;

/// Number of plan-summary features (part of the GCN's "system feature
/// vector", §4.4).
pub const PLAN_SUMMARY_DIM: usize = 5;

/// The 33-dimensional flattened representation of a physical plan.
///
/// Wraps the raw values and provides the stable FNV-1a hash used as the
/// exec-time cache key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector(pub Vec<f64>);

impl FeatureVector {
    /// The raw feature values.
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Dimensionality (always [`CACHE_FEATURE_DIM`] for plan vectors).
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Stable 64-bit FNV-1a hash over the f64 bit patterns. Used as the
    /// exec-time cache key (paper §4.2, Optimization 1: "storing the hash
    /// value of the feature vector as the key").
    pub fn stable_hash(&self) -> u64 {
        stable_hash_slice(&self.0)
    }
}

/// [`FeatureVector::stable_hash`] over a raw slice, for callers that hold
/// extracted features without the wrapper (e.g. the batched serve path,
/// which hashes each plan's features exactly once per request).
pub fn stable_hash_slice(features: &[f64]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &v in features {
        // Normalize -0.0 to 0.0 so equal values hash equally.
        let bits = if v == 0.0 { 0u64 } else { v.to_bits() };
        for byte in bits.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    h
}

/// Flattens a plan into its 33-dim feature vector (paper §4.2).
pub fn plan_feature_vector(plan: &PhysicalPlan) -> FeatureVector {
    let mut v = vec![0.0; CACHE_FEATURE_DIM];
    for node in plan.iter_preorder() {
        let c = node.op.category().index();
        v[c * 2] += node.est_cost;
        v[c * 2 + 1] += node.est_rows;
    }
    v[OperatorCategory::COUNT * 2 + plan.query_type.index()] = 1.0;
    FeatureVector(v)
}

/// Featurizes one plan node for the GCN (paper §4.4, Fig. 5).
pub fn node_features(node: &PlanNode) -> Vec<f64> {
    let mut v = vec![0.0; NODE_FEATURE_DIM];
    v[node.op.index()] = 1.0;
    let base = OperatorKind::COUNT;
    v[base] = node.est_cost.max(0.0).ln_1p();
    v[base + 1] = node.est_rows.max(0.0).ln_1p();
    v[base + 2] = node.width.max(0.0).ln_1p();
    if let Some(fmt) = node.s3_format {
        v[base + 3 + fmt.index()] = 1.0;
    }
    let tail = base + 3 + S3Format::COUNT;
    match node.table_rows {
        Some(rows) => {
            v[tail] = 1.0; // base-table flag
            v[tail + 1] = rows.max(0.0).ln_1p();
        }
        None => {
            // "Null" encoding: flag and rows stay zero.
        }
    }
    v
}

/// Human-readable name of dimension `i` of the 33-dim flattened vector
/// (for feature-importance reports).
///
/// # Panics
/// Panics if `i >= CACHE_FEATURE_DIM`.
pub fn feature_name(i: usize) -> String {
    assert!(i < CACHE_FEATURE_DIM, "feature index out of range");
    if i < OperatorCategory::COUNT * 2 {
        let cat = OperatorCategory::ALL[i / 2];
        let what = if i.is_multiple_of(2) { "cost" } else { "rows" };
        format!("{cat:?}.{what}")
    } else {
        let qt = i - OperatorCategory::COUNT * 2;
        const NAMES: [&str; QueryType::COUNT] = ["Select", "Insert", "Update", "Delete", "Other"];
        format!("query_type.{}", NAMES[qt])
    }
}

/// Plan-level summary features for the GCN's system vector: node count,
/// height, join count, ln(1+total cost), ln(1+total rows).
pub fn plan_summary_features(plan: &PhysicalPlan) -> [f64; PLAN_SUMMARY_DIM] {
    [
        plan.node_count() as f64,
        plan.height() as f64,
        plan.join_count() as f64,
        plan.total_est_cost().max(0.0).ln_1p(),
        plan.total_est_rows().max(0.0).ln_1p(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorKind as K, QueryType, S3Format};
    use crate::tree::{PhysicalPlan, PlanNode};
    use proptest::prelude::*;

    fn join_plan() -> PhysicalPlan {
        let t1 = PlanNode::leaf(K::SeqScan, 100.0, 1_000.0, 64.0).with_table(S3Format::Local, 1e6);
        let t2 =
            PlanNode::leaf(K::S3Scan, 400.0, 5_000.0, 128.0).with_table(S3Format::Parquet, 5e6);
        let hash = PlanNode::internal(K::Hash, 80.0, 5_000.0, 128.0, vec![t2]);
        let join = PlanNode::internal(K::HashJoin, 900.0, 2_000.0, 160.0, vec![t1, hash]);
        PhysicalPlan::new(
            QueryType::Select,
            PlanNode::internal(K::Result, 10.0, 2_000.0, 160.0, vec![join]),
        )
    }

    #[test]
    fn vector_has_33_dims() {
        assert_eq!(CACHE_FEATURE_DIM, 33);
        let v = plan_feature_vector(&join_plan());
        assert_eq!(v.dim(), 33);
    }

    #[test]
    fn category_sums_accumulate() {
        let v = plan_feature_vector(&join_plan());
        let scan = OperatorCategory::Scan.index();
        let s3 = OperatorCategory::S3Scan.index();
        let hj = OperatorCategory::HashJoin.index();
        assert_eq!(v.0[scan * 2], 100.0);
        assert_eq!(v.0[scan * 2 + 1], 1_000.0);
        assert_eq!(v.0[s3 * 2], 400.0);
        assert_eq!(v.0[hj * 2], 900.0);
        // Misc category holds the Result node.
        let misc = OperatorCategory::Misc.index();
        assert_eq!(v.0[misc * 2], 10.0);
    }

    #[test]
    fn query_type_one_hot() {
        let mut p = join_plan();
        let v = plan_feature_vector(&p);
        let base = OperatorCategory::COUNT * 2;
        assert_eq!(v.0[base + QueryType::Select.index()], 1.0);
        assert_eq!(v.0[base + QueryType::Delete.index()], 0.0);
        p.query_type = QueryType::Delete;
        let v2 = plan_feature_vector(&p);
        assert_eq!(v2.0[base + QueryType::Delete.index()], 1.0);
        assert_ne!(v.stable_hash(), v2.stable_hash());
    }

    #[test]
    fn identical_plans_hash_identically() {
        let a = plan_feature_vector(&join_plan());
        let b = plan_feature_vector(&join_plan());
        assert_eq!(a, b);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn different_estimates_hash_differently() {
        let mut p = join_plan();
        let a = plan_feature_vector(&p).stable_hash();
        p.root.children[0].est_cost += 1.0;
        let b = plan_feature_vector(&p).stable_hash();
        assert_ne!(a, b);
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        let a = FeatureVector(vec![0.0, 1.0]);
        let b = FeatureVector(vec![-0.0, 1.0]);
        assert_eq!(a.stable_hash(), b.stable_hash());
    }

    #[test]
    fn node_features_scan_vs_internal() {
        let scan = PlanNode::leaf(K::SeqScan, 10.0, 100.0, 64.0).with_table(S3Format::Local, 1e6);
        let v = node_features(&scan);
        assert_eq!(v.len(), NODE_FEATURE_DIM);
        assert_eq!(v[K::SeqScan.index()], 1.0);
        let base = K::COUNT;
        assert!((v[base] - 10.0f64.ln_1p()).abs() < 1e-12);
        assert_eq!(v[base + 3 + S3Format::Local.index()], 1.0);
        let tail = base + 3 + S3Format::COUNT;
        assert_eq!(v[tail], 1.0);
        assert!((v[tail + 1] - 1e6f64.ln_1p()).abs() < 1e-9);

        let join = PlanNode::internal(K::HashJoin, 5.0, 10.0, 8.0, vec![]);
        let vj = node_features(&join);
        assert_eq!(vj[K::HashJoin.index()], 1.0);
        // Null encoding for non-scan: no format, no flag, no rows.
        for i in 0..S3Format::COUNT {
            assert_eq!(vj[base + 3 + i], 0.0);
        }
        assert_eq!(vj[tail], 0.0);
        assert_eq!(vj[tail + 1], 0.0);
    }

    #[test]
    fn summary_features() {
        let p = join_plan();
        let s = plan_summary_features(&p);
        assert_eq!(s[0], 5.0); // nodes
        assert_eq!(s[1], 4.0); // height
        assert_eq!(s[2], 1.0); // joins
        assert!(s[3] > 0.0 && s[4] > 0.0);
    }

    #[test]
    fn feature_names_unique_and_total() {
        let names: std::collections::HashSet<String> =
            (0..CACHE_FEATURE_DIM).map(feature_name).collect();
        assert_eq!(names.len(), CACHE_FEATURE_DIM);
        assert_eq!(feature_name(0), "Scan.cost");
        assert_eq!(feature_name(1), "Scan.rows");
        assert!(feature_name(28).starts_with("query_type."));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn feature_name_bounds() {
        feature_name(CACHE_FEATURE_DIM);
    }

    proptest! {
        #[test]
        fn prop_onehot_is_exactly_one(
            op_idx in 0..OperatorKind::COUNT,
            cost in 0.0f64..1e9,
            rows in 0.0f64..1e9,
        ) {
            let node = PlanNode::leaf(OperatorKind::ALL[op_idx], cost, rows, 8.0);
            let v = node_features(&node);
            let onehot_sum: f64 = v[..OperatorKind::COUNT].iter().sum();
            prop_assert_eq!(onehot_sum, 1.0);
            prop_assert!(v.iter().all(|x| x.is_finite()));
        }

        #[test]
        fn prop_vector_nonnegative_and_finite(
            cost in 0.0f64..1e12,
            rows in 0.0f64..1e12,
        ) {
            let node = PlanNode::leaf(K::SeqScan, cost, rows, 64.0);
            let p = PhysicalPlan::new(QueryType::Select, node);
            let v = plan_feature_vector(&p);
            prop_assert!(v.0.iter().all(|x| x.is_finite() && *x >= 0.0));
        }
    }
}
