//! Physical operator taxonomy.
//!
//! Redshift exposes ~90 unique physical operator types in `STL_EXPLAIN`
//! (paper §4.4). This reproduction models the 35 that dominate analytic
//! plans — scans, joins, aggregation, sorting, the network distribution
//! operators (`DS_DIST_*` / `DS_BCAST`), set operations, window functions,
//! and DML — grouped into the categories used by the 33-dim flattened
//! feature vector. The one-hot width for the GCN node features follows
//! [`OperatorKind::COUNT`] and is therefore 35 here rather than the paper's
//! 90; the featurization code is width-agnostic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical plan operator, Redshift-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OperatorKind {
    // --- Scans -----------------------------------------------------------
    /// Sequential scan over a local (Redshift-managed) table.
    SeqScan,
    /// Redshift Spectrum scan over an external S3 table.
    S3Scan,
    /// Scan over a subquery's intermediate result.
    SubqueryScan,
    /// Scan over a table-generating function.
    FunctionScan,
    /// Scan over a common-table-expression result.
    CteScan,
    // --- Joins -----------------------------------------------------------
    /// Hash join probe.
    HashJoin,
    /// Merge join over sorted inputs.
    MergeJoin,
    /// Nested-loop join.
    NestedLoopJoin,
    /// Semi join (EXISTS-style).
    SemiJoin,
    /// Anti join (NOT EXISTS-style).
    AntiJoin,
    // --- Hash build ------------------------------------------------------
    /// Hash-table build side of a hash join.
    Hash,
    // --- Sorting ---------------------------------------------------------
    /// Full sort.
    Sort,
    /// Top-N sort (sort bounded by a limit).
    TopSort,
    // --- Aggregation -----------------------------------------------------
    /// Hash-based grouped aggregation.
    HashAggregate,
    /// Sorted/stream grouped aggregation.
    GroupAggregate,
    /// Ungrouped (scalar) aggregation.
    Aggregate,
    // --- Network distribution (Redshift DS_* steps) -----------------------
    /// Redistribute all rows to all compute nodes.
    DsDistAll,
    /// Redistribute rows evenly (round-robin).
    DsDistEven,
    /// Redistribute rows by distribution key.
    DsDistKey,
    /// Broadcast one side of a join to every node.
    DsBcast,
    /// No redistribution required (collocated).
    DsDistNone,
    /// Return rows from compute nodes to the leader.
    NetworkReturn,
    // --- Materialization / window / set ops -------------------------------
    /// Materialize an intermediate result (possibly spilling).
    Materialize,
    /// Window-function computation.
    WindowAgg,
    /// Concatenation of inputs (UNION ALL).
    Append,
    /// Set intersection.
    Intersect,
    /// Set difference.
    Except,
    /// Duplicate elimination.
    Unique,
    // --- Misc -------------------------------------------------------------
    /// Row-limit application.
    Limit,
    /// Projection / expression evaluation.
    Project,
    /// Leader-node result collection.
    Result,
    /// Un-correlated subplan execution.
    Subplan,
    // --- DML ---------------------------------------------------------------
    /// Row insertion.
    Insert,
    /// Row deletion.
    Delete,
    /// Row update.
    Update,
}

impl OperatorKind {
    /// Number of distinct operator kinds (the GCN one-hot width).
    pub const COUNT: usize = 35;

    /// Every operator, in one-hot index order.
    pub const ALL: [OperatorKind; Self::COUNT] = [
        OperatorKind::SeqScan,
        OperatorKind::S3Scan,
        OperatorKind::SubqueryScan,
        OperatorKind::FunctionScan,
        OperatorKind::CteScan,
        OperatorKind::HashJoin,
        OperatorKind::MergeJoin,
        OperatorKind::NestedLoopJoin,
        OperatorKind::SemiJoin,
        OperatorKind::AntiJoin,
        OperatorKind::Hash,
        OperatorKind::Sort,
        OperatorKind::TopSort,
        OperatorKind::HashAggregate,
        OperatorKind::GroupAggregate,
        OperatorKind::Aggregate,
        OperatorKind::DsDistAll,
        OperatorKind::DsDistEven,
        OperatorKind::DsDistKey,
        OperatorKind::DsBcast,
        OperatorKind::DsDistNone,
        OperatorKind::NetworkReturn,
        OperatorKind::Materialize,
        OperatorKind::WindowAgg,
        OperatorKind::Append,
        OperatorKind::Intersect,
        OperatorKind::Except,
        OperatorKind::Unique,
        OperatorKind::Limit,
        OperatorKind::Project,
        OperatorKind::Result,
        OperatorKind::Subplan,
        OperatorKind::Insert,
        OperatorKind::Delete,
        OperatorKind::Update,
    ];

    /// Stable one-hot index in `0..Self::COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The category this operator contributes to in the 33-dim vector.
    pub fn category(self) -> OperatorCategory {
        use OperatorCategory as C;
        use OperatorKind as K;
        match self {
            K::SeqScan | K::SubqueryScan | K::FunctionScan | K::CteScan => C::Scan,
            K::S3Scan => C::S3Scan,
            K::HashJoin => C::HashJoin,
            K::MergeJoin => C::MergeJoin,
            K::NestedLoopJoin | K::SemiJoin | K::AntiJoin => C::NestedLoop,
            K::Hash => C::HashBuild,
            K::Sort | K::TopSort => C::Sort,
            K::HashAggregate | K::GroupAggregate | K::Aggregate => C::Aggregate,
            K::DsDistAll
            | K::DsDistEven
            | K::DsDistKey
            | K::DsBcast
            | K::DsDistNone
            | K::NetworkReturn => C::Network,
            K::Materialize => C::Materialize,
            K::WindowAgg => C::Window,
            K::Append | K::Intersect | K::Except | K::Unique => C::SetOp,
            K::Limit | K::Project | K::Result | K::Subplan => C::Misc,
            K::Insert | K::Delete | K::Update => C::Dml,
        }
    }

    /// Whether this operator reads a base table directly (and therefore
    /// carries S3-format / table-row features; paper §4.4 sets those to
    /// "Null" otherwise).
    pub fn is_base_table_scan(self) -> bool {
        matches!(self, OperatorKind::SeqScan | OperatorKind::S3Scan)
    }

    /// Whether this operator is a join probe.
    pub fn is_join(self) -> bool {
        matches!(
            self,
            OperatorKind::HashJoin
                | OperatorKind::MergeJoin
                | OperatorKind::NestedLoopJoin
                | OperatorKind::SemiJoin
                | OperatorKind::AntiJoin
        )
    }

    /// Whether this operator moves rows across the network.
    pub fn is_network(self) -> bool {
        self.category() == OperatorCategory::Network
    }

    /// Redshift-flavoured display name (as would appear in `STL_EXPLAIN`).
    pub fn name(self) -> &'static str {
        use OperatorKind as K;
        match self {
            K::SeqScan => "XN Seq Scan",
            K::S3Scan => "XN S3 Query Scan",
            K::SubqueryScan => "XN Subquery Scan",
            K::FunctionScan => "XN Function Scan",
            K::CteScan => "XN CTE Scan",
            K::HashJoin => "XN Hash Join",
            K::MergeJoin => "XN Merge Join",
            K::NestedLoopJoin => "XN Nested Loop",
            K::SemiJoin => "XN Hash Semi Join",
            K::AntiJoin => "XN Hash Anti Join",
            K::Hash => "XN Hash",
            K::Sort => "XN Sort",
            K::TopSort => "XN Top Sort",
            K::HashAggregate => "XN HashAggregate",
            K::GroupAggregate => "XN GroupAggregate",
            K::Aggregate => "XN Aggregate",
            K::DsDistAll => "DS_DIST_ALL",
            K::DsDistEven => "DS_DIST_EVEN",
            K::DsDistKey => "DS_DIST_KEY",
            K::DsBcast => "DS_BCAST_INNER",
            K::DsDistNone => "DS_DIST_NONE",
            K::NetworkReturn => "XN Network Return",
            K::Materialize => "XN Materialize",
            K::WindowAgg => "XN Window",
            K::Append => "XN Append",
            K::Intersect => "XN Intersect",
            K::Except => "XN Except",
            K::Unique => "XN Unique",
            K::Limit => "XN Limit",
            K::Project => "XN Project",
            K::Result => "XN Result",
            K::Subplan => "XN Subplan",
            K::Insert => "XN Insert",
            K::Delete => "XN Delete",
            K::Update => "XN Update",
        }
    }
}

impl fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Operator categories aggregated by the 33-dim flattened vector.
///
/// The paper flattens a plan by "collect\[ing\] operator nodes of the same
/// type, and sum\[ming\] up their estimated cost and cardinality" (§4.2).
/// Fourteen categories × (cost, cardinality) = 28 dims, plus a 5-dim query
/// type one-hot = 33.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OperatorCategory {
    /// Local-table and intermediate-result scans.
    Scan,
    /// External S3 (Spectrum) scans.
    S3Scan,
    /// Hash join probes.
    HashJoin,
    /// Merge joins.
    MergeJoin,
    /// Nested-loop / semi / anti joins.
    NestedLoop,
    /// Hash-table builds.
    HashBuild,
    /// Sorts.
    Sort,
    /// Aggregations.
    Aggregate,
    /// Network distribution steps.
    Network,
    /// Materializations.
    Materialize,
    /// Window functions.
    Window,
    /// Set operations and duplicate elimination.
    SetOp,
    /// Limits, projections, results, subplans.
    Misc,
    /// DML writes.
    Dml,
}

impl OperatorCategory {
    /// Number of categories.
    pub const COUNT: usize = 14;

    /// Every category in feature order.
    pub const ALL: [OperatorCategory; Self::COUNT] = [
        OperatorCategory::Scan,
        OperatorCategory::S3Scan,
        OperatorCategory::HashJoin,
        OperatorCategory::MergeJoin,
        OperatorCategory::NestedLoop,
        OperatorCategory::HashBuild,
        OperatorCategory::Sort,
        OperatorCategory::Aggregate,
        OperatorCategory::Network,
        OperatorCategory::Materialize,
        OperatorCategory::Window,
        OperatorCategory::SetOp,
        OperatorCategory::Misc,
        OperatorCategory::Dml,
    ];

    /// Stable index in `0..Self::COUNT`.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// SQL statement type, part of the flattened feature vector (paper §4.2:
/// "features such as query type (e.g., SELECT, DELETE)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum QueryType {
    /// Read-only SELECT.
    Select,
    /// INSERT (including INSERT … SELECT).
    Insert,
    /// UPDATE.
    Update,
    /// DELETE.
    Delete,
    /// Everything else (CTAS, COPY, UNLOAD, utility).
    Other,
}

impl QueryType {
    /// Number of query types (the one-hot width in the 33-dim vector).
    pub const COUNT: usize = 5;

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Storage format of a scanned base table (paper §4.4: "Parquet", "OpenCSV",
/// "Text", or "Local" for Redshift-managed tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum S3Format {
    /// Columnar Parquet on S3.
    Parquet,
    /// CSV via the OpenCSV serde.
    OpenCsv,
    /// Delimited text.
    Text,
    /// Redshift-managed local storage.
    Local,
}

impl S3Format {
    /// Number of formats (one-hot width).
    pub const COUNT: usize = 4;

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Relative scan-cost multiplier of the format, used by the synthetic
    /// cost-truth model (columnar local storage is fastest; row-oriented
    /// text on S3 is slowest).
    pub fn scan_cost_factor(self) -> f64 {
        match self {
            S3Format::Local => 1.0,
            S3Format::Parquet => 2.2,
            S3Format::OpenCsv => 4.5,
            S3Format::Text => 5.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn all_lists_every_operator_once() {
        let set: HashSet<_> = OperatorKind::ALL.iter().collect();
        assert_eq!(set.len(), OperatorKind::COUNT);
    }

    #[test]
    fn indices_match_all_order() {
        for (i, op) in OperatorKind::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "index mismatch for {op:?}");
        }
        for (i, cat) in OperatorCategory::ALL.iter().enumerate() {
            assert_eq!(cat.index(), i);
        }
    }

    #[test]
    fn every_operator_has_a_category() {
        for op in OperatorKind::ALL {
            let c = op.category();
            assert!(c.index() < OperatorCategory::COUNT);
        }
    }

    #[test]
    fn every_category_is_reachable() {
        let reached: HashSet<_> = OperatorKind::ALL.iter().map(|o| o.category()).collect();
        assert_eq!(reached.len(), OperatorCategory::COUNT);
    }

    #[test]
    fn base_table_scans() {
        assert!(OperatorKind::SeqScan.is_base_table_scan());
        assert!(OperatorKind::S3Scan.is_base_table_scan());
        assert!(!OperatorKind::HashJoin.is_base_table_scan());
        assert!(!OperatorKind::CteScan.is_base_table_scan());
    }

    #[test]
    fn join_and_network_predicates() {
        assert!(OperatorKind::HashJoin.is_join());
        assert!(OperatorKind::SemiJoin.is_join());
        assert!(!OperatorKind::Hash.is_join());
        assert!(OperatorKind::DsBcast.is_network());
        assert!(!OperatorKind::Sort.is_network());
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<_> = OperatorKind::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), OperatorKind::COUNT);
    }

    #[test]
    fn query_type_indices_unique() {
        let idx: HashSet<_> = [
            QueryType::Select,
            QueryType::Insert,
            QueryType::Update,
            QueryType::Delete,
            QueryType::Other,
        ]
        .iter()
        .map(|q| q.index())
        .collect();
        assert_eq!(idx.len(), QueryType::COUNT);
    }

    #[test]
    fn s3_format_cost_ordering() {
        assert!(S3Format::Local.scan_cost_factor() < S3Format::Parquet.scan_cost_factor());
        assert!(S3Format::Parquet.scan_cost_factor() < S3Format::Text.scan_cost_factor());
    }
}
