//! Plan trees: nodes with optimizer estimates and traversal helpers.

use crate::operator::{OperatorKind, QueryType, S3Format};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One physical operator instance in a plan tree, carrying the optimizer's
/// estimates — exactly the per-node information the paper's featurizations
/// consume (§4.4, Fig. 5): operator type, estimated cost, estimated
/// cardinality, tuple width, S3 format, and base-table row count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// Physical operator type.
    pub op: OperatorKind,
    /// Optimizer-estimated cost (arbitrary cost units, as in EXPLAIN).
    pub est_cost: f64,
    /// Optimizer-estimated output cardinality (rows).
    pub est_rows: f64,
    /// Estimated output tuple width in bytes.
    pub width: f64,
    /// Storage format when the node scans a base table; `None` otherwise
    /// (the paper sets these features to "Null" for non-scan operators).
    pub s3_format: Option<S3Format>,
    /// Total rows in the scanned base table; `None` for non-scan operators.
    pub table_rows: Option<f64>,
    /// Child operators (inputs).
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Creates a leaf node with the given operator and estimates.
    pub fn leaf(op: OperatorKind, est_cost: f64, est_rows: f64, width: f64) -> Self {
        Self {
            op,
            est_cost,
            est_rows,
            width,
            s3_format: None,
            table_rows: None,
            children: Vec::new(),
        }
    }

    /// Creates an internal node over `children`.
    pub fn internal(
        op: OperatorKind,
        est_cost: f64,
        est_rows: f64,
        width: f64,
        children: Vec<PlanNode>,
    ) -> Self {
        Self {
            op,
            est_cost,
            est_rows,
            width,
            s3_format: None,
            table_rows: None,
            children,
        }
    }

    /// Attaches base-table metadata (format + row count) to a scan node.
    pub fn with_table(mut self, format: S3Format, table_rows: f64) -> Self {
        self.s3_format = Some(format);
        self.table_rows = Some(table_rows);
        self
    }

    /// Number of nodes in the subtree rooted here.
    pub fn subtree_size(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanNode::subtree_size)
            .sum::<usize>()
    }

    /// Height of the subtree (a leaf has height 1).
    pub fn height(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(PlanNode::height)
            .max()
            .unwrap_or(0)
    }

    /// Pre-order iterator over the subtree (self first, then children
    /// left-to-right, depth-first).
    pub fn iter_preorder(&self) -> PreorderIter<'_> {
        PreorderIter { stack: vec![self] }
    }
}

/// Depth-first pre-order traversal over `&PlanNode`.
pub struct PreorderIter<'a> {
    stack: Vec<&'a PlanNode>,
}

impl<'a> Iterator for PreorderIter<'a> {
    type Item = &'a PlanNode;

    fn next(&mut self) -> Option<Self::Item> {
        let node = self.stack.pop()?;
        // Push children in reverse so the leftmost child pops first.
        for child in node.children.iter().rev() {
            self.stack.push(child);
        }
        Some(node)
    }
}

/// A complete physical execution plan: a tree of [`PlanNode`]s plus the
/// statement type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhysicalPlan {
    /// Statement type (SELECT/INSERT/…), part of the 33-dim vector.
    pub query_type: QueryType,
    /// Root operator (in Redshift typically a leader-node `Result` or a
    /// network-return step).
    pub root: PlanNode,
}

impl PhysicalPlan {
    /// Wraps a root node into a plan.
    pub fn new(query_type: QueryType, root: PlanNode) -> Self {
        Self { query_type, root }
    }

    /// Total number of operator nodes.
    pub fn node_count(&self) -> usize {
        self.root.subtree_size()
    }

    /// Tree height.
    pub fn height(&self) -> usize {
        self.root.height()
    }

    /// Number of join operators — a proxy for plan complexity used by the
    /// cardinality-error model and diagnostics.
    pub fn join_count(&self) -> usize {
        self.root.iter_preorder().filter(|n| n.op.is_join()).count()
    }

    /// Pre-order iterator over all nodes.
    pub fn iter_preorder(&self) -> PreorderIter<'_> {
        self.root.iter_preorder()
    }

    /// Sum of estimated cost over all nodes.
    pub fn total_est_cost(&self) -> f64 {
        self.iter_preorder().map(|n| n.est_cost).sum()
    }

    /// Sum of estimated cardinality over all nodes.
    pub fn total_est_rows(&self) -> f64 {
        self.iter_preorder().map(|n| n.est_rows).sum()
    }

    /// EXPLAIN-style indented rendering, for debugging and examples.
    pub fn explain(&self) -> String {
        fn walk(node: &PlanNode, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            let arrow = if depth == 0 { "" } else { "->  " };
            out.push_str(&format!(
                "{indent}{arrow}{}  (cost={:.2} rows={:.0} width={:.0}",
                node.op, node.est_cost, node.est_rows, node.width
            ));
            if let (Some(fmt), Some(rows)) = (node.s3_format, node.table_rows) {
                out.push_str(&format!(" format={fmt:?} table_rows={rows:.0}"));
            }
            out.push_str(")\n");
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        let mut out = format!("{:?} plan:\n", self.query_type);
        walk(&self.root, 0, &mut out);
        out
    }
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.explain())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::{OperatorKind as K, QueryType, S3Format};

    fn sample_plan() -> PhysicalPlan {
        // Result
        //   HashJoin
        //     DsBcast -> SeqScan(t1)
        //     Hash -> S3Scan(t2)
        let t1 = PlanNode::leaf(K::SeqScan, 100.0, 1_000.0, 64.0).with_table(S3Format::Local, 1e6);
        let t2 =
            PlanNode::leaf(K::S3Scan, 400.0, 5_000.0, 128.0).with_table(S3Format::Parquet, 5e6);
        let bcast = PlanNode::internal(K::DsBcast, 50.0, 1_000.0, 64.0, vec![t1]);
        let hash = PlanNode::internal(K::Hash, 80.0, 5_000.0, 128.0, vec![t2]);
        let join = PlanNode::internal(K::HashJoin, 900.0, 2_000.0, 160.0, vec![bcast, hash]);
        let root = PlanNode::internal(K::Result, 10.0, 2_000.0, 160.0, vec![join]);
        PhysicalPlan::new(QueryType::Select, root)
    }

    #[test]
    fn node_count_and_height() {
        let p = sample_plan();
        assert_eq!(p.node_count(), 6);
        assert_eq!(p.height(), 4);
    }

    #[test]
    fn preorder_visits_all_nodes_in_order() {
        let p = sample_plan();
        let ops: Vec<_> = p.iter_preorder().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![
                K::Result,
                K::HashJoin,
                K::DsBcast,
                K::SeqScan,
                K::Hash,
                K::S3Scan
            ]
        );
    }

    #[test]
    fn join_count_counts_probes_only() {
        let p = sample_plan();
        assert_eq!(p.join_count(), 1);
    }

    #[test]
    fn totals_sum_over_nodes() {
        let p = sample_plan();
        assert!((p.total_est_cost() - (100.0 + 400.0 + 50.0 + 80.0 + 900.0 + 10.0)).abs() < 1e-9);
        assert!((p.total_est_rows() - 16_000.0).abs() < 1e-9);
    }

    #[test]
    fn with_table_sets_metadata() {
        let n = PlanNode::leaf(K::SeqScan, 1.0, 1.0, 8.0).with_table(S3Format::Text, 42.0);
        assert_eq!(n.s3_format, Some(S3Format::Text));
        assert_eq!(n.table_rows, Some(42.0));
    }

    #[test]
    fn explain_renders_every_operator() {
        let p = sample_plan();
        let text = p.explain();
        for n in p.iter_preorder() {
            assert!(text.contains(n.op.name()), "missing {}", n.op.name());
        }
        assert!(text.contains("table_rows=5000000"));
    }

    #[test]
    fn single_node_plan() {
        let p = PhysicalPlan::new(QueryType::Other, PlanNode::leaf(K::Result, 0.0, 1.0, 8.0));
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.height(), 1);
        assert_eq!(p.join_count(), 0);
    }

    #[test]
    fn serde_round_trip() {
        let p = sample_plan();
        let json = serde_json::to_string(&p).unwrap();
        let back: PhysicalPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
