//! The plan-GCN: Stage's global-model architecture (paper §4.4, Fig. 5).
//!
//! Pipeline per query plan:
//!
//! 1. **Node embedding** — each node's feature vector goes through a linear
//!    layer + ReLU into a `hidden`-dim embedding.
//! 2. **Directed message passing** — `gcn_layers` rounds of child→parent
//!    convolution: `h'ᵥ = ReLU(hᵥ·W_self + mean(h_children)·W_child + b)`.
//!    Information flows bottom-up, so after enough rounds the root embedding
//!    summarizes the entire plan.
//! 3. **Readout** — the root embedding is concatenated with a *system
//!    feature vector* (plan summary, instance type, node count, memory,
//!    concurrency — supplied by the caller) and an MLP head regresses the
//!    target (Stage trains in `ln(1+secs)` space).
//!
//! The paper's production model uses hidden size 512 and 8 layers on GPUs;
//! defaults here are CPU-scaled (64/3) and both are configurable.

use crate::adam::Adam;
use crate::graph::{Graph, Var};
use crate::layers::{Linear, Mlp, ParamStore};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// A plan tree prepared for the GCN: per-node feature vectors, child lists,
/// the root index, system features, and the regression target.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeSample {
    /// One feature vector per node; all must share the configured width.
    pub node_feats: Vec<Vec<f64>>,
    /// Children of each node (indices into `node_feats`).
    pub children: Vec<Vec<usize>>,
    /// Root node index.
    pub root: usize,
    /// System feature vector (shared by all nodes of the plan).
    pub sys_feats: Vec<f64>,
    /// Regression target (label space chosen by the caller).
    pub target: f64,
}

impl TreeSample {
    /// Checks structural consistency: child indices in range, no child
    /// listed twice, every non-root node reachable from the root, and the
    /// graph is acyclic (tree/DAG shaped).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_feats.len();
        if n == 0 {
            return Err("empty tree".into());
        }
        if self.children.len() != n {
            return Err("children list length mismatch".into());
        }
        if self.root >= n {
            return Err("root out of range".into());
        }
        let mut in_degree = vec![0usize; n];
        for (v, kids) in self.children.iter().enumerate() {
            for &k in kids {
                if k >= n {
                    return Err(format!("node {v} has out-of-range child {k}"));
                }
                in_degree[k] += 1;
            }
        }
        if in_degree[self.root] != 0 {
            return Err("root appears as a child (cycle)".into());
        }
        for (v, &d) in in_degree.iter().enumerate() {
            if v != self.root && d != 1 {
                return Err(format!(
                    "node {v} has in-degree {d}; a plan tree requires exactly 1"
                ));
            }
        }
        if self.topo_order().len() != n {
            return Err("tree has unreachable nodes or a cycle".into());
        }
        Ok(())
    }

    /// Post-order over the tree from the root (children before parents).
    /// On cyclic or partially unreachable input the returned order is
    /// truncated, which [`TreeSample::validate`] uses for detection.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.node_feats.len();
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unseen, 1 on stack, 2 done
        let mut stack = vec![(self.root, false)];
        while let Some((v, expanded)) = stack.pop() {
            if expanded {
                state[v] = 2;
                order.push(v);
                continue;
            }
            if state[v] != 0 {
                continue; // already visited or cycle — skip
            }
            state[v] = 1;
            stack.push((v, true));
            for &c in &self.children[v] {
                if state[c] == 0 {
                    stack.push((c, false));
                }
            }
        }
        order
    }
}

/// GCN architecture and training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GcnConfig {
    /// Width of each node feature vector.
    pub node_feat_dim: usize,
    /// Width of the system feature vector.
    pub sys_feat_dim: usize,
    /// Hidden embedding size (paper: 512; CPU default: 64).
    pub hidden: usize,
    /// Message-passing rounds (paper: 8; CPU default: 3).
    pub gcn_layers: usize,
    /// Dropout probability on hidden activations (paper: 0.2).
    pub dropout: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size (plans per gradient step).
    pub batch_size: usize,
    /// RNG seed (weights, shuffling, dropout).
    pub seed: u64,
}

impl GcnConfig {
    /// CPU-scaled defaults for the given feature widths.
    pub fn new(node_feat_dim: usize, sys_feat_dim: usize) -> Self {
        Self {
            node_feat_dim,
            sys_feat_dim,
            hidden: 64,
            gcn_layers: 3,
            dropout: 0.2,
            lr: 1e-3,
            epochs: 30,
            batch_size: 32,
            seed: 42,
        }
    }
}

/// Per-layer message-passing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvLayer {
    w_self: usize,
    w_child: usize,
    bias: usize,
}

/// The trainable plan-GCN model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanGcn {
    config: GcnConfig,
    store: ParamStore,
    embed: Linear,
    convs: Vec<ConvLayer>,
    head: Mlp,
}

/// Loss trajectory returned by [`PlanGcn::fit`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f64>,
}

// A trained plan-GCN is immutable at inference time and is shared across
// replay worker threads behind an `Arc` (via `stage_core::GlobalModel`);
// this compile-time check pins that contract.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PlanGcn>();
    assert_send_sync::<TreeSample>();
};

impl PlanGcn {
    /// Initializes a model with random weights.
    pub fn new(config: GcnConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut store = ParamStore::new();
        let embed = Linear::new(&mut store, config.node_feat_dim, config.hidden, &mut rng);
        let convs = (0..config.gcn_layers)
            .map(|_| ConvLayer {
                w_self: store.add(Matrix::he_init(config.hidden, config.hidden, &mut rng)),
                w_child: store.add(Matrix::he_init(config.hidden, config.hidden, &mut rng)),
                bias: store.add(Matrix::zeros(1, config.hidden)),
            })
            .collect();
        let head = Mlp::new(
            &mut store,
            &[config.hidden + config.sys_feat_dim, config.hidden, 1],
            config.dropout,
            &mut rng,
        );
        Self {
            config,
            store,
            embed,
            convs,
            head,
        }
    }

    /// Forward pass for one sample on an existing tape. Returns the `1×1`
    /// prediction var.
    fn forward(&self, g: &mut Graph, sample: &TreeSample, training: bool, rng: &mut StdRng) -> Var {
        let order = sample.topo_order();
        let n = sample.node_feats.len();

        // 1. Embed every node.
        let mut h: Vec<Option<Var>> = vec![None; n];
        for &v in &order {
            let x = g.input(Matrix::row_vector(&sample.node_feats[v]));
            let e = self.embed.forward(g, &self.store, x);
            h[v] = Some(g.relu(e));
        }

        // 2. Message passing, children before parents within each round.
        for conv in &self.convs {
            let mut next: Vec<Option<Var>> = vec![None; n];
            for &v in &order {
                // The topo order covers every node and children precede
                // parents by construction ([`TreeSample::validate`]); if a
                // malformed sample slips through anyway, skip the node and
                // aggregate the embedded children we do have rather than
                // panicking inside a prediction path.
                let Some(hv) = h[v] else { continue };
                let w_self = g.param(&self.store, conv.w_self);
                let self_term = g.matmul(hv, w_self);
                let kids: Vec<Var> = sample.children[v].iter().filter_map(|&c| h[c]).collect();
                let combined = if kids.is_empty() {
                    self_term
                } else {
                    let stacked = g.stack_rows(&kids);
                    let agg = g.mean_rows(stacked);
                    let w_child = g.param(&self.store, conv.w_child);
                    let child_term = g.matmul(agg, w_child);
                    g.add(self_term, child_term)
                };
                let b = g.param(&self.store, conv.bias);
                let biased = g.add_row_broadcast(combined, b);
                let activated = g.relu(biased);
                next[v] = Some(g.dropout(activated, self.config.dropout, training, rng));
            }
            h = next;
        }

        // 3. Readout: root ⊕ system features → head. A missing root
        // embedding (out-of-range root on a malformed sample) reads out
        // from a zero vector instead of panicking.
        let root_h = h
            .get(sample.root)
            .copied()
            .flatten()
            .unwrap_or_else(|| g.input(Matrix::row_vector(&vec![0.0; self.config.hidden])));
        let sys = g.input(Matrix::row_vector(&sample.sys_feats));
        let cat = g.concat_cols(root_h, sys);
        self.head.forward(g, &self.store, cat, training, rng)
    }

    /// Predicts the target for one sample (eval mode, no dropout).
    pub fn predict(&self, sample: &TreeSample) -> f64 {
        let mut rng = StdRng::seed_from_u64(0); // unused in eval mode
        let mut g = Graph::new();
        let out = self.forward(&mut g, sample, false, &mut rng);
        g.value(out).get(0, 0)
    }

    /// Trains on `samples` with mini-batch Adam; returns per-epoch losses.
    ///
    /// # Panics
    /// Panics if any sample fails [`TreeSample::validate`] or has mismatched
    /// feature widths.
    pub fn fit(&mut self, samples: &[TreeSample]) -> TrainReport {
        for (i, s) in samples.iter().enumerate() {
            if let Err(e) = s.validate() {
                panic!("invalid sample {i}: {e}");
            }
            assert!(
                s.node_feats
                    .iter()
                    .all(|f| f.len() == self.config.node_feat_dim),
                "sample {i}: node feature width mismatch"
            );
            assert_eq!(
                s.sys_feats.len(),
                self.config.sys_feat_dim,
                "sample {i}: system feature width mismatch"
            );
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x5eed);
        let mut adam = Adam::new(&self.store, self.config.lr);
        let mut order: Vec<usize> = (0..samples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for epoch in 0..self.config.epochs {
            // Step-decay schedule: full LR for the first 60% of epochs,
            // 0.3x until 85%, then 0.1x to settle.
            let progress = epoch as f64 / self.config.epochs.max(1) as f64;
            let factor = if progress < 0.6 {
                1.0
            } else if progress < 0.85 {
                0.3
            } else {
                0.1
            };
            adam.set_lr(self.config.lr * factor);
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(self.config.batch_size.max(1)) {
                self.store.zero_grads();
                let mut g = Graph::new();
                let mut terms = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let out = self.forward(&mut g, &samples[i], true, &mut rng);
                    terms.push(g.squared_error(out, samples[i].target));
                }
                let loss = g.mean_scalars(&terms);
                epoch_loss += g.value(loss).get(0, 0);
                batches += 1;
                g.backward(loss, &mut self.store);
                adam.step(&mut self.store);
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f64);
        }
        TrainReport { epoch_losses }
    }

    /// Architecture configuration.
    pub fn config(&self) -> &GcnConfig {
        &self.config
    }

    /// Total scalar parameter count.
    pub fn n_parameters(&self) -> usize {
        self.store.n_scalars()
    }

    /// Approximate in-memory size in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.store.approx_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// Builds a random chain/binary tree whose target is a simple function
    /// of the node features: sum over nodes of feat[0] (learnable from the
    /// root after message passing).
    fn synth_sample(rng: &mut StdRng, dim: usize) -> TreeSample {
        let n = rng.gen_range(2..6);
        let mut node_feats = Vec::with_capacity(n);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        for i in 0..n {
            let mut f = vec![0.0; dim];
            f[0] = rng.gen_range(0.0..1.0);
            if dim > 1 {
                f[1] = rng.gen_range(0.0..1.0);
            }
            node_feats.push(f);
            if i > 0 {
                let parent = rng.gen_range(0..i);
                children[parent].push(i);
            }
        }
        let target: f64 = node_feats.iter().map(|f| f[0]).sum();
        TreeSample {
            node_feats,
            children,
            root: 0,
            sys_feats: vec![n as f64],
            target,
        }
    }

    fn quick_config(dim: usize) -> GcnConfig {
        GcnConfig {
            hidden: 16,
            gcn_layers: 2,
            dropout: 0.0,
            lr: 5e-3,
            epochs: 60,
            batch_size: 16,
            seed: 9,
            ..GcnConfig::new(dim, 1)
        }
    }

    #[test]
    fn topo_order_children_first() {
        let s = TreeSample {
            node_feats: vec![vec![0.0]; 4],
            children: vec![vec![1, 2], vec![3], vec![], vec![]],
            root: 0,
            sys_feats: vec![],
            target: 0.0,
        };
        let order = s.topo_order();
        assert_eq!(order.len(), 4);
        let pos = |v: usize| order.iter().position(|&x| x == v).unwrap();
        assert!(pos(1) < pos(0));
        assert!(pos(2) < pos(0));
        assert!(pos(3) < pos(1));
    }

    #[test]
    fn validate_catches_structural_errors() {
        let ok = TreeSample {
            node_feats: vec![vec![0.0]; 2],
            children: vec![vec![1], vec![]],
            root: 0,
            sys_feats: vec![],
            target: 0.0,
        };
        assert!(ok.validate().is_ok());

        let out_of_range = TreeSample {
            children: vec![vec![5], vec![]],
            ..ok.clone()
        };
        assert!(out_of_range.validate().is_err());

        let unreachable = TreeSample {
            children: vec![vec![], vec![]],
            ..ok.clone()
        };
        assert!(unreachable.validate().is_err());

        let cyclic = TreeSample {
            node_feats: vec![vec![0.0]; 2],
            children: vec![vec![1], vec![0]],
            root: 0,
            sys_feats: vec![],
            target: 0.0,
        };
        assert!(cyclic.validate().is_err());

        let bad_root = TreeSample { root: 9, ..ok };
        assert!(bad_root.validate().is_err());
    }

    #[test]
    fn learns_sum_of_node_features() {
        let mut rng = StdRng::seed_from_u64(11);
        let dim = 3;
        let samples: Vec<TreeSample> = (0..120).map(|_| synth_sample(&mut rng, dim)).collect();
        let mut model = PlanGcn::new(quick_config(dim));
        let report = model.fit(&samples);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first * 0.2,
            "training did not converge: first={first} last={last}"
        );
        // Held-out check: predictions correlate with targets.
        let test: Vec<TreeSample> = (0..30).map(|_| synth_sample(&mut rng, dim)).collect();
        let mse: f64 = test
            .iter()
            .map(|s| (model.predict(s) - s.target).powi(2))
            .sum::<f64>()
            / test.len() as f64;
        let mean_t: f64 = test.iter().map(|s| s.target).sum::<f64>() / test.len() as f64;
        let var_t: f64 = test
            .iter()
            .map(|s| (s.target - mean_t).powi(2))
            .sum::<f64>()
            / test.len() as f64;
        assert!(mse < 0.5 * var_t, "mse={mse} var={var_t}");
    }

    #[test]
    fn prediction_deterministic_in_eval_mode() {
        let mut rng = StdRng::seed_from_u64(5);
        let s = synth_sample(&mut rng, 2);
        let model = PlanGcn::new(quick_config(2));
        assert_eq!(model.predict(&s), model.predict(&s));
    }

    #[test]
    fn deeper_trees_still_forward() {
        // A 20-node chain: deeper than gcn_layers; must not panic and must
        // produce a finite output.
        let n = 20;
        let node_feats = vec![vec![0.5, 0.5]; n];
        let children: Vec<Vec<usize>> = (0..n)
            .map(|i| if i + 1 < n { vec![i + 1] } else { vec![] })
            .collect();
        let s = TreeSample {
            node_feats,
            children,
            root: 0,
            sys_feats: vec![n as f64],
            target: 1.0,
        };
        let model = PlanGcn::new(quick_config(2));
        assert!(model.predict(&s).is_finite());
    }

    #[test]
    #[should_panic(expected = "invalid sample")]
    fn fit_rejects_invalid_samples() {
        let bad = TreeSample {
            node_feats: vec![vec![0.0, 0.0]; 2],
            children: vec![vec![9], vec![]],
            root: 0,
            sys_feats: vec![0.0],
            target: 0.0,
        };
        let mut model = PlanGcn::new(quick_config(2));
        model.fit(&[bad]);
    }

    #[test]
    fn parameter_count_scales_with_hidden() {
        let small = PlanGcn::new(GcnConfig {
            hidden: 8,
            ..GcnConfig::new(4, 2)
        });
        let large = PlanGcn::new(GcnConfig {
            hidden: 32,
            ..GcnConfig::new(4, 2)
        });
        assert!(large.n_parameters() > 5 * small.n_parameters());
        assert!(small.approx_size_bytes() > 0);
    }
}
