//! Parameter storage and the Linear / MLP modules.

use crate::graph::{Graph, Var};
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Owns all parameter tensors and their gradient accumulators.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Matrix>,
    grads: Vec<Matrix>,
}

impl ParamStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter tensor, returning its id.
    pub fn add(&mut self, value: Matrix) -> usize {
        self.grads.push(Matrix::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.values.len() - 1
    }

    /// Parameter value.
    pub fn value(&self, pid: usize) -> &Matrix {
        &self.values[pid]
    }

    /// Mutable parameter value (used by optimizers).
    pub fn value_mut(&mut self, pid: usize) -> &mut Matrix {
        &mut self.values[pid]
    }

    /// Accumulated gradient.
    pub fn grad(&self, pid: usize) -> &Matrix {
        &self.grads[pid]
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, pid: usize) -> &mut Matrix {
        &mut self.grads[pid]
    }

    /// Zeroes all gradients (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Number of parameter tensors.
    pub fn n_tensors(&self) -> usize {
        self.values.len()
    }

    /// Total number of scalar parameters.
    pub fn n_scalars(&self) -> usize {
        self.values.iter().map(|m| m.data().len()).sum()
    }

    /// Approximate in-memory size in bytes (values + grads).
    pub fn approx_size_bytes(&self) -> usize {
        self.n_scalars() * 2 * std::mem::size_of::<f64>()
    }
}

/// A fully connected layer `y = x·W + b`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Linear {
    w: usize,
    b: usize,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Allocates He-initialized weights in `store`.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let w = store.add(Matrix::he_init(in_dim, out_dim, rng));
        let b = store.add(Matrix::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass on the tape.
    pub fn forward(&self, g: &mut Graph, store: &ParamStore, x: Var) -> Var {
        debug_assert_eq!(g.value(x).cols(), self.in_dim);
        let w = g.param(store, self.w);
        let b = g.param(store, self.b);
        let h = g.matmul(x, w);
        g.add_row_broadcast(h, b)
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// A multi-layer perceptron: Linear → ReLU (→ Dropout) …, with a linear
/// output layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    dropout: f64,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[33, 64, 64, 1]`.
    ///
    /// # Panics
    /// Panics with fewer than two widths.
    pub fn new(store: &mut ParamStore, widths: &[usize], dropout: f64, rng: &mut StdRng) -> Self {
        assert!(widths.len() >= 2, "an MLP needs input and output widths");
        let layers = widths
            .windows(2)
            .map(|w| Linear::new(store, w[0], w[1], rng))
            .collect();
        Self { layers, dropout }
    }

    /// Forward pass; ReLU + dropout after every layer except the last.
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        x: Var,
        training: bool,
        rng: &mut StdRng,
    ) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, store, h);
            if i < last {
                h = g.relu(h);
                h = g.dropout(h, self.dropout, training, rng);
            }
        }
        h
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("non-empty").in_dim()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adam::Adam;
    use rand::{Rng, SeedableRng};

    #[test]
    fn store_bookkeeping() {
        let mut s = ParamStore::new();
        let a = s.add(Matrix::zeros(2, 3));
        let b = s.add(Matrix::zeros(1, 4));
        assert_eq!((a, b), (0, 1));
        assert_eq!(s.n_tensors(), 2);
        assert_eq!(s.n_scalars(), 10);
        assert!(s.approx_size_bytes() >= 160);
        s.grad_mut(a).set(1, 1, 5.0);
        s.zero_grads();
        assert_eq!(s.grad(a).get(1, 1), 0.0);
    }

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let lin = Linear::new(&mut s, 3, 5, &mut rng);
        let mut g = Graph::new();
        let x = g.input(Matrix::zeros(2, 3));
        let y = lin.forward(&mut g, &s, x);
        assert_eq!((g.value(y).rows(), g.value(y).cols()), (2, 5));
    }

    #[test]
    fn mlp_learns_xor_like_function() {
        // y = 1 if exactly one input > 0.5 else 0: non-linearly separable.
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &[2, 16, 16, 1], 0.0, &mut rng);
        let mut adam = Adam::new(&store, 0.01);
        let data: Vec<([f64; 2], f64)> = (0..200)
            .map(|_| {
                let a: f64 = rng.gen_range(0.0..1.0);
                let b: f64 = rng.gen_range(0.0..1.0);
                let y = if (a > 0.5) ^ (b > 0.5) { 1.0 } else { 0.0 };
                ([a, b], y)
            })
            .collect();
        let mut last_loss = f64::INFINITY;
        for _epoch in 0..300 {
            store.zero_grads();
            let mut g = Graph::new();
            let mut terms = Vec::new();
            for (x, y) in &data {
                let xin = g.input(Matrix::row_vector(x));
                let out = mlp.forward(&mut g, &store, xin, true, &mut rng);
                terms.push(g.squared_error(out, *y));
            }
            let loss = g.mean_scalars(&terms);
            last_loss = g.value(loss).get(0, 0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!(last_loss < 0.05, "XOR loss did not converge: {last_loss}");
        // Spot-check the four corners.
        let mut eval = |x: [f64; 2]| -> f64 {
            let mut g = Graph::new();
            let xin = g.input(Matrix::row_vector(&x));
            let out = mlp.forward(&mut g, &store, xin, false, &mut rng);
            g.value(out).get(0, 0)
        };
        assert!(eval([0.9, 0.1]) > 0.7);
        assert!(eval([0.1, 0.9]) > 0.7);
        assert!(eval([0.9, 0.9]) < 0.3);
        assert!(eval([0.1, 0.1]) < 0.3);
    }

    #[test]
    #[should_panic(expected = "input and output widths")]
    fn mlp_rejects_single_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        Mlp::new(&mut s, &[3], 0.0, &mut rng);
    }
}
