//! # stage-nn
//!
//! Minimal neural-network substrate for Stage's **global model** (paper
//! §4.4): a graph convolutional network over physical plan trees. The paper
//! trains its GCN with PyTorch on GPUs; no canonical Rust equivalent exists,
//! so this crate implements the needed subset from scratch, CPU-only:
//!
//! * [`tensor`] — dense row-major `f64` matrices with the handful of BLAS-ish
//!   kernels the models need;
//! * [`graph`] — tape-based reverse-mode autodiff over matrix ops (matmul,
//!   bias add, ReLU, dropout, row-stack/mean for child aggregation, column
//!   concat, squared-error loss);
//! * [`layers`] — `Linear` / `Mlp` modules over a [`ParamStore`];
//! * [`adam`] — the Adam optimizer;
//! * [`gcn`] — the plan-GCN itself: node-feature embedding MLP, L rounds of
//!   directed child→parent message passing, root readout concatenated with a
//!   system feature vector, and a regression head (Fig. 5's architecture).
//!
//! The GCN consumes generic [`gcn::TreeSample`]s (node feature vectors +
//! child lists + system features), keeping this crate independent of the
//! plan representation; `stage-core` performs the conversion from
//! `stage_plan::PhysicalPlan`.
//!
//! Everything is deterministic given the seed.

pub mod adam;
pub mod gcn;
pub mod graph;
pub mod layers;
pub mod tensor;

pub use adam::Adam;
pub use gcn::{GcnConfig, PlanGcn, TreeSample};
pub use graph::{Graph, Var};
pub use layers::{Linear, Mlp, ParamStore};
pub use tensor::Matrix;
