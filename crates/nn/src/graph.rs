//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a define-by-run tape: every operation appends a node
//! holding its output value; [`Graph::backward`] walks the tape in reverse,
//! propagating gradients and accumulating them into the [`ParamStore`]
//! (parameters enter the tape via [`Graph::param`]). A fresh graph is built
//! per forward pass, which is cheap at the model sizes used here and keeps
//! the implementation small and auditable — exactly what backprop through
//! variable-shaped plan *trees* needs.

use crate::layers::ParamStore;
use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

enum Op {
    /// External input (no gradient propagation).
    Input,
    /// Snapshot of parameter `pid`; backward accumulates into the store.
    Param(usize),
    /// `a · b`.
    MatMul(Var, Var),
    /// Elementwise `a + b` (same shape).
    Add(Var, Var),
    /// `x (n×c) + bias (1×c)` broadcast over rows.
    AddRowBroadcast(Var, Var),
    /// Elementwise `max(x, 0)`.
    Relu(Var),
    /// Inverted dropout; the retained mask (`1/(1-p)` or `0`) is stored.
    Dropout(Var, Vec<f64>),
    /// Stack k row vectors (each `1×c`) into a `k×c` matrix.
    StackRows(Vec<Var>),
    /// Column-mean over rows: `k×c → 1×c`.
    MeanRows(Var),
    /// Concatenate two row vectors along columns.
    ConcatCols(Var, Var),
    /// `s · x`.
    Scale(Var, f64),
    /// `(x[0,0] − target)²` as a `1×1` scalar.
    SquaredError(Var, f64),
}

struct Node {
    op: Op,
    value: Matrix,
    grad: Matrix,
}

/// The autodiff tape. See the module docs.
#[derive(Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, op: Op, value: Matrix) -> Var {
        let grad = Matrix::zeros(value.rows(), value.cols());
        self.nodes.push(Node { op, value, grad });
        Var(self.nodes.len() - 1)
    }

    /// Value of a node.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// Gradient of a node (after [`Graph::backward`]).
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Number of tape nodes (diagnostics).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Registers an external input.
    pub fn input(&mut self, value: Matrix) -> Var {
        self.push(Op::Input, value)
    }

    /// Registers a parameter snapshot; gradients flow back into the store.
    pub fn param(&mut self, store: &ParamStore, pid: usize) -> Var {
        self.push(Op::Param(pid), store.value(pid).clone())
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(Op::MatMul(a, b), value)
    }

    /// Elementwise sum of same-shaped vars.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut value = self.nodes[a.0].value.clone();
        value.add_assign(&self.nodes[b.0].value);
        self.push(Op::Add(a, b), value)
    }

    /// Adds a `1×c` bias row to every row of `x`.
    pub fn add_row_broadcast(&mut self, x: Var, bias: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let bv = &self.nodes[bias.0].value;
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(bv.rows(), 1, "bias must be a row vector");
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(xv.cols(), bv.cols(), "bias width mismatch");
        let value = Matrix::from_fn(xv.rows(), xv.cols(), |r, c| xv.get(r, c) + bv.get(0, c));
        self.push(Op::AddRowBroadcast(x, bias), value)
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let value = Matrix::from_fn(xv.rows(), xv.cols(), |r, c| xv.get(r, c).max(0.0));
        self.push(Op::Relu(x), value)
    }

    /// Inverted dropout: during training, zeroes each element with
    /// probability `p` and scales survivors by `1/(1-p)`; identity when
    /// `training` is false or `p == 0`.
    pub fn dropout(&mut self, x: Var, p: f64, training: bool, rng: &mut StdRng) -> Var {
        if !training || p <= 0.0 {
            // Identity via Scale keeps the tape uniform.
            return self.scale(x, 1.0);
        }
        // lint:allow(no-panic): startup-config validation — dropout comes from a static model config, never from data
        assert!(p < 1.0, "dropout probability must be < 1");
        let xv = &self.nodes[x.0].value;
        let keep = 1.0 / (1.0 - p);
        let mask: Vec<f64> = (0..xv.rows() * xv.cols())
            .map(|_| {
                if rng.gen_range(0.0..1.0) < p {
                    0.0
                } else {
                    keep
                }
            })
            .collect();
        let value = Matrix::from_vec(
            xv.rows(),
            xv.cols(),
            xv.data().iter().zip(&mask).map(|(v, m)| v * m).collect(),
        );
        self.push(Op::Dropout(x, mask), value)
    }

    /// Stacks k row vectors into a `k×c` matrix.
    ///
    /// # Panics
    /// Panics if `rows` is empty or widths differ.
    pub fn stack_rows(&mut self, rows: &[Var]) -> Var {
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert!(!rows.is_empty(), "stack_rows needs at least one row");
        let cols = self.nodes[rows[0].0].value.cols();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for &v in rows {
            let m = &self.nodes[v.0].value;
            // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
            assert_eq!(m.rows(), 1, "stack_rows expects row vectors");
            // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
            assert_eq!(m.cols(), cols, "stack_rows width mismatch");
            data.extend_from_slice(m.data());
        }
        let value = Matrix::from_vec(rows.len(), cols, data);
        self.push(Op::StackRows(rows.to_vec()), value)
    }

    /// Column-mean over rows.
    pub fn mean_rows(&mut self, x: Var) -> Var {
        let xv = &self.nodes[x.0].value;
        let k = xv.rows() as f64;
        let value = Matrix::from_fn(1, xv.cols(), |_, c| {
            (0..xv.rows()).map(|r| xv.get(r, c)).sum::<f64>() / k
        });
        self.push(Op::MeanRows(x), value)
    }

    /// Concatenates two row vectors along columns.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let bv = &self.nodes[b.0].value;
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(av.rows(), 1);
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(bv.rows(), 1);
        let mut data = av.data().to_vec();
        data.extend_from_slice(bv.data());
        let value = Matrix::from_vec(1, av.cols() + bv.cols(), data);
        self.push(Op::ConcatCols(a, b), value)
    }

    /// Scalar multiple.
    pub fn scale(&mut self, x: Var, s: f64) -> Var {
        let mut value = self.nodes[x.0].value.clone();
        value.scale_assign(s);
        self.push(Op::Scale(x, s), value)
    }

    /// `(x[0,0] − target)²` as a `1×1` loss term.
    pub fn squared_error(&mut self, x: Var, target: f64) -> Var {
        let d = self.nodes[x.0].value.get(0, 0) - target;
        self.push(
            Op::SquaredError(x, target),
            Matrix::from_vec(1, 1, vec![d * d]),
        )
    }

    /// Sums a list of `1×1` scalars and divides by their count (batch-mean
    /// loss). Returns the last element unchanged for a single term.
    pub fn mean_scalars(&mut self, terms: &[Var]) -> Var {
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert!(!terms.is_empty());
        let mut acc = terms[0];
        for &t in &terms[1..] {
            acc = self.add(acc, t);
        }
        self.scale(acc, 1.0 / terms.len() as f64)
    }

    /// Reverse pass from `loss` (must be `1×1`); parameter gradients are
    /// *accumulated* into `store` (call [`ParamStore::zero_grads`] between
    /// steps).
    pub fn backward(&mut self, loss: Var, store: &mut ParamStore) {
        {
            let n = &mut self.nodes[loss.0];
            // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
            assert_eq!(
                (n.value.rows(), n.value.cols()),
                (1, 1),
                "loss must be scalar"
            );
            n.grad.set(0, 0, 1.0);
        }
        for i in (0..=loss.0).rev() {
            // Take the node's gradient to appease the borrow checker; ops
            // never read their own grad afterwards.
            let gout = std::mem::replace(&mut self.nodes[i].grad, Matrix::zeros(0, 0));
            if gout.data().iter().all(|&g| g == 0.0) {
                self.nodes[i].grad = gout;
                continue;
            }
            // Clone op metadata handles (cheap: Vars are indices).
            match &self.nodes[i].op {
                Op::Input => {}
                Op::Param(pid) => {
                    store.grad_mut(*pid).add_assign(&gout);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let ga = gout.matmul(&self.nodes[b.0].value.transpose());
                    let gb = self.nodes[a.0].value.transpose().matmul(&gout);
                    self.nodes[a.0].grad.add_assign(&ga);
                    self.nodes[b.0].grad.add_assign(&gb);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.nodes[a.0].grad.add_assign(&gout);
                    self.nodes[b.0].grad.add_assign(&gout);
                }
                Op::AddRowBroadcast(x, bias) => {
                    let (x, bias) = (*x, *bias);
                    self.nodes[x.0].grad.add_assign(&gout);
                    let gb = Matrix::from_fn(1, gout.cols(), |_, c| {
                        (0..gout.rows()).map(|r| gout.get(r, c)).sum()
                    });
                    self.nodes[bias.0].grad.add_assign(&gb);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let xv = &self.nodes[x.0].value;
                    let gx = Matrix::from_fn(gout.rows(), gout.cols(), |r, c| {
                        if xv.get(r, c) > 0.0 {
                            gout.get(r, c)
                        } else {
                            0.0
                        }
                    });
                    self.nodes[x.0].grad.add_assign(&gx);
                }
                Op::Dropout(x, mask) => {
                    let x = *x;
                    let gx = Matrix::from_vec(
                        gout.rows(),
                        gout.cols(),
                        gout.data().iter().zip(mask).map(|(g, m)| g * m).collect(),
                    );
                    self.nodes[x.0].grad.add_assign(&gx);
                }
                Op::StackRows(rows) => {
                    let rows = rows.clone();
                    for (r, v) in rows.iter().enumerate() {
                        let gr = Matrix::row_vector(gout.row(r));
                        self.nodes[v.0].grad.add_assign(&gr);
                    }
                }
                Op::MeanRows(x) => {
                    let x = *x;
                    let k = self.nodes[x.0].value.rows();
                    let gx = Matrix::from_fn(k, gout.cols(), |_, c| gout.get(0, c) / k as f64);
                    self.nodes[x.0].grad.add_assign(&gx);
                }
                Op::ConcatCols(a, b) => {
                    let (a, b) = (*a, *b);
                    let ca = self.nodes[a.0].value.cols();
                    let ga = Matrix::row_vector(&gout.row(0)[..ca]);
                    let gb = Matrix::row_vector(&gout.row(0)[ca..]);
                    self.nodes[a.0].grad.add_assign(&ga);
                    self.nodes[b.0].grad.add_assign(&gb);
                }
                Op::Scale(x, s) => {
                    let (x, s) = (*x, *s);
                    let mut gx = gout.clone();
                    gx.scale_assign(s);
                    self.nodes[x.0].grad.add_assign(&gx);
                }
                Op::SquaredError(x, target) => {
                    let (x, target) = (*x, *target);
                    let d = self.nodes[x.0].value.get(0, 0) - target;
                    let mut gx = Matrix::zeros(1, 1);
                    gx.set(0, 0, 2.0 * d * gout.get(0, 0));
                    self.nodes[x.0].grad.add_assign(&gx);
                }
            }
            self.nodes[i].grad = gout;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Numerical-gradient check for a scalar function of one parameter.
    fn check_param_grad(
        build: impl Fn(&mut Graph, &ParamStore) -> Var,
        store: &mut ParamStore,
        pid: usize,
    ) {
        // Analytic gradient.
        store.zero_grads();
        let mut g = Graph::new();
        let loss = build(&mut g, store);
        g.backward(loss, store);
        let analytic = store.grad(pid).clone();

        // Numerical gradient.
        let eps = 1e-5;
        let (rows, cols) = (analytic.rows(), analytic.cols());
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(pid).get(r, c);
                store.value_mut(pid).set(r, c, orig + eps);
                let mut gp = Graph::new();
                let vp = build(&mut gp, store);
                let lp = gp.value(vp).get(0, 0);
                store.value_mut(pid).set(r, c, orig - eps);
                let mut gm = Graph::new();
                let vm = build(&mut gm, store);
                let lm = gm.value(vm).get(0, 0);
                store.value_mut(pid).set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < 1e-4 * (1.0 + a.abs()),
                    "grad mismatch at ({r},{c}): analytic={a} numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn matmul_grad_check() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(2, 2, vec![0.5, -0.3, 0.8, 0.1]));
        check_param_grad(
            |g, s| {
                let x = g.input(Matrix::row_vector(&[1.0, 2.0]));
                let wp = g.param(s, w);
                let h = g.matmul(x, wp);
                // loss = (h·[1;1] - 3)^2 via matmul with constant
                let ones = g.input(Matrix::from_vec(2, 1, vec![1.0, 1.0]));
                let y = g.matmul(h, ones);
                g.squared_error(y, 3.0)
            },
            &mut store,
            w,
        );
    }

    #[test]
    fn mlp_like_grad_check() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let w1 = store.add(Matrix::he_init(3, 4, &mut rng));
        let b1 = store.add(Matrix::zeros(1, 4));
        let w2 = store.add(Matrix::he_init(4, 1, &mut rng));
        let build = |g: &mut Graph, s: &ParamStore| {
            let x = g.input(Matrix::row_vector(&[0.5, -1.0, 2.0]));
            let w1v = g.param(s, w1);
            let b1v = g.param(s, b1);
            let w2v = g.param(s, w2);
            let h = g.matmul(x, w1v);
            let h = g.add_row_broadcast(h, b1v);
            let h = g.relu(h);
            let y = g.matmul(h, w2v);
            g.squared_error(y, 1.5)
        };
        for pid in [w1, b1, w2] {
            check_param_grad(build, &mut store, pid);
        }
    }

    #[test]
    fn stack_mean_concat_grad_check() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(4);
        let w = store.add(Matrix::he_init(2, 2, &mut rng));
        let head = store.add(Matrix::he_init(4, 1, &mut rng));
        let build = |g: &mut Graph, s: &ParamStore| {
            let wv = g.param(s, w);
            let x1 = g.input(Matrix::row_vector(&[1.0, 0.0]));
            let x2 = g.input(Matrix::row_vector(&[0.0, 1.0]));
            let h1 = g.matmul(x1, wv);
            let h2 = g.matmul(x2, wv);
            let stacked = g.stack_rows(&[h1, h2]);
            let agg = g.mean_rows(stacked);
            let cat = g.concat_cols(agg, h1);
            let hv = g.param(s, head);
            let y = g.matmul(cat, hv);
            g.squared_error(y, 0.7)
        };
        for pid in [w, head] {
            check_param_grad(build, &mut store, pid);
        }
    }

    #[test]
    fn relu_kills_negative_gradient() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![-2.0]));
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[1.0]));
        let wv = g.param(&store, w);
        let h = g.matmul(x, wv); // -2, relu -> 0
        let r = g.relu(h);
        let loss = g.squared_error(r, 5.0);
        g.backward(loss, &mut store);
        assert_eq!(store.grad(w).get(0, 0), 0.0);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let d = g.dropout(x, 0.5, false, &mut rng);
        assert_eq!(g.value(d).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_train_mode_preserves_expectation() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 20_000;
        let mut g = Graph::new();
        let x = g.input(Matrix::from_vec(1, n, vec![1.0; n]));
        let d = g.dropout(x, 0.3, true, &mut rng);
        let mean: f64 = g.value(d).data().iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        // Every surviving element is scaled by 1/0.7.
        for &v in g.value(d).data() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_scalars_averages() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_vec(1, 1, vec![2.0]));
        let b = g.input(Matrix::from_vec(1, 1, vec![4.0]));
        let c = g.input(Matrix::from_vec(1, 1, vec![6.0]));
        let m = g.mean_scalars(&[a, b, c]);
        assert!((g.value(m).get(0, 0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // One linear neuron fitting y = 3x: a few GD steps must reduce loss.
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![0.0]));
        let loss_at = |store: &ParamStore| -> f64 {
            let mut g = Graph::new();
            let x = g.input(Matrix::row_vector(&[2.0]));
            let wv = g.param(store, w);
            let y = g.matmul(x, wv);
            let l = g.squared_error(y, 6.0);
            g.value(l).get(0, 0)
        };
        let initial = loss_at(&store);
        for _ in 0..50 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.input(Matrix::row_vector(&[2.0]));
            let wv = g.param(&store, w);
            let y = g.matmul(x, wv);
            let l = g.squared_error(y, 6.0);
            g.backward(l, &mut store);
            let grad = store.grad(w).get(0, 0);
            let v = store.value(w).get(0, 0);
            store.value_mut(w).set(0, 0, v - 0.05 * grad);
        }
        let final_loss = loss_at(&store);
        assert!(final_loss < 1e-3 * initial.max(1.0), "final={final_loss}");
        assert!((store.value(w).get(0, 0) - 3.0).abs() < 0.05);
    }
}
