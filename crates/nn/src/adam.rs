//! The Adam optimizer.

use crate::layers::ParamStore;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Adam with bias correction (Kingma & Ba). One first/second-moment tensor
/// pair per parameter tensor in the store.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    /// Creates an optimizer matching the store's current tensors.
    pub fn new(store: &ParamStore, lr: f64) -> Self {
        let shape = |i: usize| {
            let p = store.value(i);
            Matrix::zeros(p.rows(), p.cols())
        };
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: (0..store.n_tensors()).map(shape).collect(),
            v: (0..store.n_tensors()).map(shape).collect(),
        }
    }

    /// Learning rate accessor.
    pub fn lr(&self) -> f64 {
        self.lr
    }

    /// Adjusts the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f64) {
        self.lr = lr;
    }

    /// Applies one update from the store's accumulated gradients.
    ///
    /// # Panics
    /// Panics if the store gained tensors since construction.
    pub fn step(&mut self, store: &mut ParamStore) {
        assert_eq!(
            store.n_tensors(),
            self.m.len(),
            "store changed shape since Adam::new"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for pid in 0..store.n_tensors() {
            // Split borrows: copy grad values while updating moments.
            let n = store.grad(pid).data().len();
            for i in 0..n {
                let g = store.grad(pid).data()[i];
                let m = &mut self.m[pid].data_mut()[i];
                *m = self.beta1 * *m + (1.0 - self.beta1) * g;
                let m_hat = *m / bc1;
                let v = &mut self.v[pid].data_mut()[i];
                *v = self.beta2 * *v + (1.0 - self.beta2) * g * g;
                let v_hat = *v / bc2;
                let update = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                store.value_mut(pid).data_mut()[i] -= update;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn minimizes_a_quadratic() {
        // Minimize (w - 4)^2 from w = 0.
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![0.0]));
        let mut adam = Adam::new(&store, 0.1);
        for _ in 0..500 {
            store.zero_grads();
            let mut g = Graph::new();
            let x = g.input(Matrix::row_vector(&[1.0]));
            let wv = g.param(&store, w);
            let y = g.matmul(x, wv);
            let loss = g.squared_error(y, 4.0);
            g.backward(loss, &mut store);
            adam.step(&mut store);
        }
        assert!((store.value(w).get(0, 0) - 4.0).abs() < 1e-3);
    }

    #[test]
    fn first_step_magnitude_is_lr() {
        // Adam's first step is ~lr regardless of gradient scale.
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![0.0]));
        store.grad_mut(w).set(0, 0, 1234.0);
        let mut adam = Adam::new(&store, 0.01);
        adam.step(&mut store);
        let moved = store.value(w).get(0, 0).abs();
        assert!((moved - 0.01).abs() < 1e-4, "moved={moved}");
    }

    #[test]
    fn zero_grad_means_no_movement() {
        let mut store = ParamStore::new();
        let w = store.add(Matrix::from_vec(1, 1, vec![2.5]));
        let mut adam = Adam::new(&store, 0.1);
        adam.step(&mut store);
        assert_eq!(store.value(w).get(0, 0), 2.5);
    }

    #[test]
    fn lr_accessors() {
        let store = ParamStore::new();
        let mut adam = Adam::new(&store, 0.1);
        assert_eq!(adam.lr(), 0.1);
        adam.set_lr(0.05);
        assert_eq!(adam.lr(), 0.05);
    }
}
