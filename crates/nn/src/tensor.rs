//! Dense row-major matrices and the kernels the autodiff tape needs.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a closure of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Matrix from a flat row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// A 1×n row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Kaiming/He-style initialization: N(0, sqrt(2/fan_in)) via Box–Muller.
    pub fn he_init(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let std = (2.0 / rows as f64).sqrt();
        Self::from_fn(rows, cols, |_, _| {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Element accessor.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }

    /// Row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` (ikj loop order for cache friendliness).
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        // lint:allow(no-panic): tape shape contract — a violation is a model-construction bug, never input-dependent
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise sum into self. A shape mismatch is a programmer error:
    /// debug builds assert, release builds sum the overlapping prefix
    /// (degrade, don't take the serving path down).
    pub fn add_assign(&mut self, other: &Matrix) {
        debug_assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scales all elements in place.
    pub fn scale_assign(&mut self, s: f64) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sets all elements to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_result() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.matmul(&b);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(0, 1), 4.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        assert_eq!(a.data(), &[11.0, 22.0, 33.0]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[5.5, 11.0, 16.5]);
        a.fill_zero();
        assert_eq!(a.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::he_init(100, 100, &mut rng);
        let mean: f64 = m.data().iter().sum::<f64>() / 10_000.0;
        let var: f64 = m.data().iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.01, "mean={mean}");
        // Expected var = 2/100 = 0.02.
        assert!((var - 0.02).abs() < 0.005, "var={var}");
    }

    #[test]
    fn row_vector_shape() {
        let v = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!((v.rows(), v.cols()), (1, 2));
        assert_eq!(v.row(0), &[1.0, 2.0]);
    }

    #[test]
    fn frobenius() {
        let m = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }
}
