//! Accuracy summaries: absolute error and Q-error.
//!
//! The paper evaluates predictors with
//!
//! * **absolute error** `|actual − predicted|` in seconds, summarized as mean
//!   (MAE), median (P50-AE) and tail (P90-AE) — Tables 1, 3, 4, 5, 6;
//! * **Q-error** `max(predicted/actual, actual/predicted)` (Moerkotte et al.),
//!   summarized as MQE / P50-QE / P90-QE — Table 2.

use crate::quantile::{mean, quantiles};
use serde::{Deserialize, Serialize};

/// Smallest exec-time used in Q-error ratios; guards divisions for
/// sub-millisecond queries and non-positive predictions.
pub const QERROR_FLOOR_SECS: f64 = 1e-3;

/// Absolute error of one prediction, in seconds.
pub fn abs_error(actual: f64, predicted: f64) -> f64 {
    (actual - predicted).abs()
}

/// Q-error of one prediction: `max(p/a, a/p)` with both values floored at
/// [`QERROR_FLOOR_SECS`]. Always ≥ 1.
///
/// ```
/// use stage_metrics::error::q_error;
/// assert_eq!(q_error(10.0, 10.0), 1.0);
/// assert_eq!(q_error(10.0, 5.0), 2.0);
/// assert_eq!(q_error(5.0, 10.0), 2.0);
/// ```
pub fn q_error(actual: f64, predicted: f64) -> f64 {
    let a = actual.max(QERROR_FLOOR_SECS);
    let p = predicted.max(QERROR_FLOOR_SECS);
    (a / p).max(p / a)
}

/// MAE / P50-AE / P90-AE over a set of (actual, predicted) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbsErrorSummary {
    /// Number of pairs summarized.
    pub count: usize,
    /// Mean absolute error (seconds).
    pub mae: f64,
    /// Median absolute error.
    pub p50: f64,
    /// 90th-percentile absolute error.
    pub p90: f64,
}

impl AbsErrorSummary {
    /// Summarizes parallel slices of actual and predicted exec-times.
    ///
    /// Returns `None` when empty or when lengths differ.
    pub fn from_pairs(actual: &[f64], predicted: &[f64]) -> Option<Self> {
        if actual.is_empty() || actual.len() != predicted.len() {
            return None;
        }
        let errs: Vec<f64> = actual
            .iter()
            .zip(predicted)
            .map(|(&a, &p)| abs_error(a, p))
            .collect();
        Self::from_errors(&errs)
    }

    /// Summarizes precomputed absolute errors.
    pub fn from_errors(errs: &[f64]) -> Option<Self> {
        let qs = quantiles(errs, &[0.5, 0.9])?;
        Some(Self {
            count: errs.len(),
            mae: mean(errs)?,
            p50: qs[0],
            p90: qs[1],
        })
    }
}

/// MQE / P50-QE / P90-QE over a set of (actual, predicted) pairs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QErrorSummary {
    /// Number of pairs summarized.
    pub count: usize,
    /// Mean Q-error.
    pub mqe: f64,
    /// Median Q-error.
    pub p50: f64,
    /// 90th-percentile Q-error.
    pub p90: f64,
}

impl QErrorSummary {
    /// Summarizes parallel slices of actual and predicted exec-times.
    pub fn from_pairs(actual: &[f64], predicted: &[f64]) -> Option<Self> {
        if actual.is_empty() || actual.len() != predicted.len() {
            return None;
        }
        let errs: Vec<f64> = actual
            .iter()
            .zip(predicted)
            .map(|(&a, &p)| q_error(a, p))
            .collect();
        let qs = quantiles(&errs, &[0.5, 0.9])?;
        Some(Self {
            count: errs.len(),
            mqe: mean(&errs)?,
            p50: qs[0],
            p90: qs[1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn abs_error_is_symmetric() {
        assert_eq!(abs_error(3.0, 8.0), 5.0);
        assert_eq!(abs_error(8.0, 3.0), 5.0);
    }

    #[test]
    fn q_error_perfect_is_one() {
        assert_eq!(q_error(5.0, 5.0), 1.0);
    }

    #[test]
    fn q_error_floors_tiny_values() {
        // actual 0s would otherwise blow up; floored to 1 ms.
        let q = q_error(0.0, 1.0);
        assert_eq!(q, 1.0 / QERROR_FLOOR_SECS);
        // negative predictions also floored
        assert_eq!(q_error(1.0, -5.0), 1.0 / QERROR_FLOOR_SECS);
    }

    #[test]
    fn abs_summary_basic() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let pred = [1.0, 1.0, 5.0, 0.0];
        // errors: 0, 1, 2, 4
        let s = AbsErrorSummary::from_pairs(&actual, &pred).unwrap();
        assert_eq!(s.count, 4);
        assert!((s.mae - 1.75).abs() < 1e-12);
        assert!((s.p50 - 1.5).abs() < 1e-12);
        // p90: pos = 0.9*3 = 2.7 -> 2 + 0.7*2 = 3.4
        assert!((s.p90 - 3.4).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        assert!(AbsErrorSummary::from_pairs(&[1.0], &[1.0, 2.0]).is_none());
        assert!(QErrorSummary::from_pairs(&[1.0], &[]).is_none());
    }

    #[test]
    fn q_summary_basic() {
        let actual = [10.0, 10.0];
        let pred = [10.0, 20.0];
        let s = QErrorSummary::from_pairs(&actual, &pred).unwrap();
        assert!((s.mqe - 1.5).abs() < 1e-12);
        assert!((s.p50 - 1.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_q_error_at_least_one(a in 0.0f64..1e6, p in -10.0f64..1e6) {
            prop_assert!(q_error(a, p) >= 1.0);
        }

        #[test]
        fn prop_q_error_symmetric(a in 0.01f64..1e5, p in 0.01f64..1e5) {
            prop_assert!((q_error(a, p) - q_error(p, a)).abs() < 1e-9);
        }

        #[test]
        fn prop_abs_summary_orders(errs in proptest::collection::vec(0.0f64..1e6, 1..100)) {
            let s = AbsErrorSummary::from_errors(&errs).unwrap();
            prop_assert!(s.p50 <= s.p90 + 1e-9);
            let max = errs.iter().cloned().fold(0.0f64, f64::max);
            prop_assert!(s.mae <= max + 1e-9);
            prop_assert!(s.p90 <= max + 1e-9);
        }
    }
}
