//! Prediction-rejection ratio (PRR), the scoring rule the paper uses to
//! evaluate the local model's uncertainty quality (Figs. 10–11).
//!
//! PRR quantifies how well predicted *uncertainty* ranks observed *error*.
//! Construction (paper §5.4):
//!
//! 1. Sort queries by observed absolute error descending ("oracle" order) and
//!    plot cumulative-error fraction vs. fraction of queries rejected — the
//!    red curve.
//! 2. Sort by predicted uncertainty descending — the blue curve.
//! 3. A random order gives the diagonal — the black curve.
//! 4. `PRR = AUC(uncertainty − random) / AUC(oracle − random)`, in `[−1, 1]`
//!    but ≈ `[0, 1]` for any non-adversarial uncertainty; 1 means the
//!    uncertainty ranks errors perfectly.

use serde::{Deserialize, Serialize};

/// The three rejection curves underlying a PRR score, sampled at each
/// rejection count. Useful for plotting Fig. 10.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PrrCurves {
    /// Cumulative-error fraction when rejecting by true error (descending).
    pub oracle: Vec<f64>,
    /// Cumulative-error fraction when rejecting by predicted uncertainty.
    pub by_uncertainty: Vec<f64>,
    /// The diagonal (uniform random rejection), same length.
    pub random: Vec<f64>,
    /// Area between `by_uncertainty` and `random`.
    pub auc_stage: f64,
    /// Area between `oracle` and `random`.
    pub auc_oracle: f64,
}

impl PrrCurves {
    /// Builds the curves from parallel slices of absolute errors and
    /// predicted uncertainties. Returns `None` if inputs are empty,
    /// mismatched, or total error is zero (PRR undefined).
    pub fn new(errors: &[f64], uncertainties: &[f64]) -> Option<Self> {
        if errors.is_empty() || errors.len() != uncertainties.len() {
            return None;
        }
        let total: f64 = errors.iter().sum();
        if total <= 0.0 {
            return None;
        }
        let n = errors.len();

        let cum_fraction = |order: &[usize]| -> Vec<f64> {
            let mut out = Vec::with_capacity(n + 1);
            out.push(0.0);
            let mut acc = 0.0;
            for &i in order {
                acc += errors[i];
                out.push(acc / total);
            }
            out
        };

        let mut oracle_order: Vec<usize> = (0..n).collect();
        oracle_order.sort_by(|&a, &b| errors[b].partial_cmp(&errors[a]).expect("NaN error in PRR"));
        let mut unc_order: Vec<usize> = (0..n).collect();
        unc_order.sort_by(|&a, &b| {
            uncertainties[b]
                .partial_cmp(&uncertainties[a])
                .expect("NaN uncertainty in PRR")
        });

        let oracle = cum_fraction(&oracle_order);
        let by_uncertainty = cum_fraction(&unc_order);
        let random: Vec<f64> = (0..=n).map(|i| i as f64 / n as f64).collect();

        // Trapezoid AUC of (curve - diagonal); uniform x-spacing of 1/n.
        let auc_above_diag = |curve: &[f64]| -> f64 {
            let mut area = 0.0;
            for i in 0..n {
                let y0 = curve[i] - random[i];
                let y1 = curve[i + 1] - random[i + 1];
                area += (y0 + y1) / 2.0 / n as f64;
            }
            area
        };
        let auc_oracle = auc_above_diag(&oracle);
        let auc_stage = auc_above_diag(&by_uncertainty);
        Some(Self {
            oracle,
            by_uncertainty,
            random,
            auc_stage,
            auc_oracle,
        })
    }

    /// The PRR score `AUC_stage / AUC_oracle`.
    ///
    /// Returns `None` when the oracle AUC is zero (all errors equal — any
    /// ranking is as good as any other, so the ratio is undefined).
    pub fn score(&self) -> Option<f64> {
        if self.auc_oracle <= f64::EPSILON {
            None
        } else {
            Some(self.auc_stage / self.auc_oracle)
        }
    }
}

/// One-shot PRR score; see [`PrrCurves`].
pub fn prr_score(errors: &[f64], uncertainties: &[f64]) -> Option<f64> {
    PrrCurves::new(errors, uncertainties)?.score()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn perfect_uncertainty_scores_one() {
        let errors = [5.0, 1.0, 3.0, 0.5, 2.0];
        // Uncertainty exactly proportional to error: perfect ranking.
        let unc: Vec<f64> = errors.iter().map(|e| e * 10.0).collect();
        let s = prr_score(&errors, &unc).unwrap();
        assert!((s - 1.0).abs() < 1e-12, "score={s}");
    }

    #[test]
    fn anti_correlated_uncertainty_scores_negative() {
        let errors = [5.0, 4.0, 3.0, 2.0, 1.0];
        let unc = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = prr_score(&errors, &unc).unwrap();
        assert!(s < 0.0, "score={s}");
    }

    #[test]
    fn constant_uncertainty_scores_near_zero_or_arbitrary_order() {
        // With all uncertainties equal, the ranking is input-order; for errors
        // already shuffled the score should sit well below perfect.
        let errors = [1.0, 5.0, 2.0, 4.0, 3.0, 0.5, 4.5, 1.5];
        let unc = [1.0; 8];
        let s = prr_score(&errors, &unc).unwrap();
        assert!(s < 0.9);
    }

    #[test]
    fn undefined_cases() {
        assert!(prr_score(&[], &[]).is_none());
        assert!(prr_score(&[1.0], &[1.0, 2.0]).is_none());
        assert!(prr_score(&[0.0, 0.0], &[1.0, 2.0]).is_none()); // zero total error
                                                                // all-equal errors -> oracle AUC 0 -> undefined
        assert!(prr_score(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn curves_are_monotone_and_end_at_one() {
        let errors = [3.0, 1.0, 4.0, 1.5, 9.0];
        let unc = [2.0, 1.0, 3.0, 1.0, 5.0];
        let c = PrrCurves::new(&errors, &unc).unwrap();
        for curve in [&c.oracle, &c.by_uncertainty, &c.random] {
            assert_eq!(curve.len(), errors.len() + 1);
            assert_eq!(curve[0], 0.0);
            assert!((curve[curve.len() - 1] - 1.0).abs() < 1e-12);
            assert!(curve.windows(2).all(|w| w[1] >= w[0] - 1e-12));
        }
        // Oracle dominates any other ordering pointwise.
        for (o, u) in c.oracle.iter().zip(&c.by_uncertainty) {
            assert!(o + 1e-12 >= *u);
        }
    }

    proptest! {
        #[test]
        fn prop_score_at_most_one(
            pairs in proptest::collection::vec((0.001f64..100.0, 0.0f64..100.0), 2..100)
        ) {
            let errors: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let unc: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(s) = prr_score(&errors, &unc) {
                prop_assert!(s <= 1.0 + 1e-9, "score={}", s);
                prop_assert!(s >= -1.0 - 1e-9, "score={}", s);
            }
        }

        #[test]
        fn prop_perfect_ranking_is_one(
            mut errors in proptest::collection::vec(0.001f64..100.0, 3..60)
        ) {
            // Deduplicate to make ordering strict (ties allow equal score anyway).
            errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
            errors.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            prop_assume!(errors.len() >= 2);
            let unc = errors.clone();
            if let Some(s) = prr_score(&errors, &unc) {
                prop_assert!((s - 1.0).abs() < 1e-9, "score={}", s);
            }
        }
    }
}
