//! Welford's online algorithm for running mean and variance.
//!
//! The paper's exec-time cache ("Optimization 2", §4.2) replaces the full
//! history of observed exec-times with a running mean/variance plus the most
//! recent observation, shrinking each hash-table entry to four values. This
//! module provides that running statistic.

use serde::{Deserialize, Serialize};

/// Numerically stable running mean/variance accumulator.
///
/// Tracks `count`, `mean`, and the sum of squared deviations `m2`
/// ([Welford 1962]). Population and sample variance are both exposed; the
/// cache uses the population variance since it describes exactly the
/// observations it has seen.
///
/// ```
/// use stage_metrics::Welford;
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.count(), 4);
/// assert!((w.mean() - 2.5).abs() < 1e-12);
/// assert!((w.variance() - 1.25).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an accumulator seeded with a single observation.
    pub fn with_first(x: f64) -> Self {
        let mut w = Self::new();
        w.push(x);
        w
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Reconstructs an accumulator from its raw state `(count, mean, m2)` —
    /// the artefact-store decode path. The fields are restored bit-for-bit;
    /// no re-derivation happens, so a round trip through
    /// [`Welford::m2`]/[`Welford::from_parts`] is exact.
    pub fn from_parts(count: u64, mean: f64, m2: f64) -> Self {
        Self { count, mean, m2 }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw sum of squared deviations (the `m2` state), for exact
    /// serialization alongside [`Welford::count`] and [`Welford::mean`].
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Running mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (`m2 / n`); `0.0` when fewer than one observation.
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Unbiased sample variance (`m2 / (n - 1)`); `0.0` with fewer than two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford / Chan).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn naive_mean_var(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_is_zero() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let w = Welford::with_first(7.5);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 7.5);
        assert_eq!(w.variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_formulas() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        let (mean, var) = naive_mean_var(&xs);
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
        let sample = var * xs.len() as f64 / (xs.len() - 1) as f64;
        assert!((w.sample_variance() - sample).abs() < 1e-12);
    }

    #[test]
    fn merge_two_halves_equals_whole() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 50.0).collect();
        let mut whole = Welford::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = Welford::new();
        let mut right = Welford::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::with_first(2.0);
        w.push(4.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);
        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn stable_under_large_offsets() {
        // Classic catastrophic-cancellation scenario for the naive sum of
        // squares formula; Welford must keep the small variance exact-ish.
        let offset = 1e9;
        let mut w = Welford::new();
        for x in [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0] {
            w.push(x);
        }
        assert!((w.mean() - (offset + 10.0)).abs() < 1e-3);
        assert!((w.variance() - 22.5).abs() < 1e-3, "var={}", w.variance());
    }

    proptest! {
        #[test]
        fn prop_matches_naive(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let mut w = Welford::new();
            xs.iter().for_each(|&x| w.push(x));
            let (mean, var) = naive_mean_var(&xs);
            prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
            prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
            prop_assert!(w.variance() >= -1e-9);
        }

        #[test]
        fn prop_merge_associative_with_split(
            xs in proptest::collection::vec(-1e4f64..1e4, 2..100),
            split_frac in 0.0f64..1.0,
        ) {
            let split = ((xs.len() as f64 * split_frac) as usize).min(xs.len());
            let mut whole = Welford::new();
            xs.iter().for_each(|&x| whole.push(x));
            let mut a = Welford::new();
            let mut b = Welford::new();
            xs[..split].iter().for_each(|&x| a.push(x));
            xs[split..].iter().for_each(|&x| b.push(x));
            a.merge(&b);
            prop_assert_eq!(a.count(), whole.count());
            prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
            prop_assert!((a.variance() - whole.variance()).abs() < 1e-4 * (1.0 + whole.variance().abs()));
        }
    }
}
