//! Exact quantile helpers.
//!
//! The paper reports P50/P90 absolute error and Q-error (Tables 1–6) and the
//! 0.01–99.99 percentile latency distribution (Fig. 1b). These helpers compute
//! exact quantiles with linear interpolation over a sorted copy of the data.

/// Returns the `q`-quantile (`0.0 ..= 1.0`) of `xs` using linear
/// interpolation between closest ranks (the "R-7" rule used by numpy's
/// default `percentile`).
///
/// Returns `None` for an empty slice, a `q` outside `[0, 1]`, or any NaN in
/// `xs` (a NaN has no rank; the old behaviour was a panic deep inside the
/// sort, which is unacceptable now that serving paths call this).
///
/// ```
/// use stage_metrics::quantile;
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(quantile(&xs, 0.5), Some(2.5));
/// assert_eq!(quantile(&xs, 0.0), Some(1.0));
/// assert_eq!(quantile(&xs, 1.0), Some(4.0));
/// ```
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() || !(0.0..=1.0).contains(&q) || q.is_nan() || xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_of_sorted(&sorted, q))
}

/// Like [`quantile`] but assumes `sorted` is already ascending, avoiding the
/// sort. Total and panic-free: an empty slice yields NaN, and `q` is clamped
/// into `[0, 1]` (this sits under the serving drift calibrator, which is in
/// stage-lint's transitive no-panic scope).
pub fn quantile_of_sorted(sorted: &[f64], q: f64) -> f64 {
    let (Some(&first), Some(&last)) = (sorted.first(), sorted.last()) else {
        return f64::NAN;
    };
    if sorted.len() == 1 {
        return first;
    }
    let max_pos = (sorted.len() - 1) as f64;
    let pos = (q * max_pos).clamp(0.0, max_pos);
    if !pos.is_finite() {
        return f64::NAN;
    }
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let a = sorted.get(lo).copied().unwrap_or(last);
    let b = sorted.get(lo + 1).copied().unwrap_or(last);
    a + (b - a) * frac
}

/// Percentile convenience wrapper: `percentile(xs, 90.0)` == `quantile(xs, 0.9)`.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    quantile(xs, p / 100.0)
}

/// Computes several quantiles in one pass (single sort).
pub fn quantiles(xs: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    if xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut sorted: Vec<f64> = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    qs.iter()
        .map(|&q| {
            if (0.0..=1.0).contains(&q) {
                Some(quantile_of_sorted(&sorted, q))
            } else {
                None
            }
        })
        .collect()
}

/// Arithmetic mean; `None` for empty input.
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(quantiles(&[], &[0.5]), None);
    }

    #[test]
    fn out_of_range_q_returns_none() {
        assert_eq!(quantile(&[1.0], -0.1), None);
        assert_eq!(quantile(&[1.0], 1.1), None);
        assert_eq!(quantile(&[1.0], f64::NAN), None);
    }

    #[test]
    fn nan_input_returns_none_instead_of_panicking() {
        assert_eq!(quantile(&[1.0, f64::NAN, 3.0], 0.5), None);
        assert_eq!(quantiles(&[f64::NAN], &[0.5]), None);
    }

    #[test]
    fn quantile_of_sorted_is_total() {
        assert!(quantile_of_sorted(&[], 0.5).is_nan());
        assert_eq!(quantile_of_sorted(&[7.0], 0.9), 7.0);
        // q outside [0,1] clamps instead of indexing out of bounds.
        assert_eq!(quantile_of_sorted(&[1.0, 2.0], -3.0), 1.0);
        assert_eq!(quantile_of_sorted(&[1.0, 2.0], 42.0), 2.0);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.37), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn interpolates_between_ranks() {
        let xs = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(quantile(&xs, 0.5), Some(30.0));
        assert_eq!(quantile(&xs, 0.25), Some(20.0));
        // 0.9 * 4 = 3.6 -> 40 + 0.6*10 = 46
        assert!((quantile(&xs, 0.9).unwrap() - 46.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [50.0, 10.0, 40.0, 20.0, 30.0];
        assert_eq!(quantile(&xs, 0.5), Some(30.0));
    }

    #[test]
    fn percentile_matches_quantile() {
        let xs = [1.0, 2.0, 3.0, 9.0];
        assert_eq!(percentile(&xs, 90.0), quantile(&xs, 0.9));
    }

    #[test]
    fn quantiles_batch_matches_individual() {
        let xs = [5.0, 1.0, 9.0, 3.0, 7.0];
        let qs = [0.0, 0.5, 0.9, 1.0];
        let batch = quantiles(&xs, &qs).unwrap();
        for (q, b) in qs.iter().zip(&batch) {
            assert_eq!(quantile(&xs, *q), Some(*b));
        }
    }

    proptest! {
        #[test]
        fn prop_quantile_within_range(
            xs in proptest::collection::vec(-1e9f64..1e9, 1..100),
            q in 0.0f64..=1.0,
        ) {
            let v = quantile(&xs, q).unwrap();
            let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(v >= min && v <= max);
        }

        #[test]
        fn prop_quantile_monotone_in_q(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..60),
            q1 in 0.0f64..=1.0,
            q2 in 0.0f64..=1.0,
        ) {
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, lo).unwrap() <= quantile(&xs, hi).unwrap() + 1e-9);
        }
    }
}
