//! The paper's exec-time bucketing and per-bucket accuracy tables.
//!
//! Tables 1–6 break accuracy down by the *actual* exec-time of the query:
//! `0–10 s`, `10–60 s`, `60–120 s`, `120–300 s`, `300 s+`, plus an `Overall`
//! row. [`BucketReport`] renders exactly that table for either absolute error
//! or Q-error.

use crate::error::{AbsErrorSummary, QErrorSummary};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The five exec-time buckets used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecTimeBucket {
    /// 0 s – 10 s
    UpTo10s,
    /// 10 s – 60 s
    From10To60s,
    /// 60 s – 120 s
    From60To120s,
    /// 120 s – 300 s
    From120To300s,
    /// 300 s and beyond
    Over300s,
}

impl ExecTimeBucket {
    /// All buckets in table order.
    pub const ALL: [ExecTimeBucket; 5] = [
        ExecTimeBucket::UpTo10s,
        ExecTimeBucket::From10To60s,
        ExecTimeBucket::From60To120s,
        ExecTimeBucket::From120To300s,
        ExecTimeBucket::Over300s,
    ];

    /// Buckets an actual exec-time in seconds.
    pub fn of(actual_secs: f64) -> Self {
        match actual_secs {
            t if t < 10.0 => ExecTimeBucket::UpTo10s,
            t if t < 60.0 => ExecTimeBucket::From10To60s,
            t if t < 120.0 => ExecTimeBucket::From60To120s,
            t if t < 300.0 => ExecTimeBucket::From120To300s,
            _ => ExecTimeBucket::Over300s,
        }
    }

    /// Human-readable label matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            ExecTimeBucket::UpTo10s => "0s - 10s",
            ExecTimeBucket::From10To60s => "10s - 60s",
            ExecTimeBucket::From60To120s => "60s - 120s",
            ExecTimeBucket::From120To300s => "120s - 300s",
            ExecTimeBucket::Over300s => "300s+",
        }
    }
}

impl fmt::Display for ExecTimeBucket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One row of a bucketed accuracy table: the bucket (or `None` for the
/// "Overall" row) and its error summaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketRow {
    /// `None` for the "Overall" row.
    pub bucket: Option<ExecTimeBucket>,
    /// Absolute-error summary for the row's queries (`None` if the bucket is
    /// empty).
    pub abs: Option<AbsErrorSummary>,
    /// Q-error summary for the row's queries.
    pub q: Option<QErrorSummary>,
}

impl BucketRow {
    /// Number of queries in the row.
    pub fn count(&self) -> usize {
        self.abs.map(|a| a.count).unwrap_or(0)
    }
}

/// A full bucketed accuracy table (one predictor's column group in
/// Tables 1–6): an "Overall" row followed by a row per bucket.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BucketReport {
    /// Rows in table order: Overall first, then `ExecTimeBucket::ALL`.
    pub rows: Vec<BucketRow>,
}

impl BucketReport {
    /// Builds the report from parallel slices of actual and predicted
    /// exec-times (seconds). Returns `None` on empty or mismatched input.
    pub fn from_pairs(actual: &[f64], predicted: &[f64]) -> Option<Self> {
        if actual.is_empty() || actual.len() != predicted.len() {
            return None;
        }
        let mut rows = Vec::with_capacity(6);
        rows.push(BucketRow {
            bucket: None,
            abs: AbsErrorSummary::from_pairs(actual, predicted),
            q: QErrorSummary::from_pairs(actual, predicted),
        });
        for bucket in ExecTimeBucket::ALL {
            let (a, p): (Vec<f64>, Vec<f64>) = actual
                .iter()
                .zip(predicted)
                .filter(|(&a, _)| ExecTimeBucket::of(a) == bucket)
                .map(|(&a, &p)| (a, p))
                .unzip();
            rows.push(BucketRow {
                bucket: Some(bucket),
                abs: AbsErrorSummary::from_pairs(&a, &p),
                q: QErrorSummary::from_pairs(&a, &p),
            });
        }
        Some(Self { rows })
    }

    /// The "Overall" row.
    pub fn overall(&self) -> &BucketRow {
        &self.rows[0]
    }

    /// The row for a specific bucket.
    pub fn bucket(&self, bucket: ExecTimeBucket) -> &BucketRow {
        self.rows
            .iter()
            .find(|r| r.bucket == Some(bucket))
            .expect("all buckets present by construction")
    }

    /// Renders the absolute-error columns as an aligned text table
    /// (`label  #queries  MAE  P50-AE  P90-AE`).
    pub fn render_abs(&self, title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<13} {:>12} {:>10} {:>10} {:>10}\n",
            "Exec-time", "# Queries", "MAE", "P50-AE", "P90-AE"
        );
        for row in &self.rows {
            let label = row.bucket.map(|b| b.label()).unwrap_or("Overall");
            match row.abs {
                Some(a) => out.push_str(&format!(
                    "{label:<13} {:>12} {:>10.3} {:>10.3} {:>10.3}\n",
                    a.count, a.mae, a.p50, a.p90
                )),
                None => out.push_str(&format!(
                    "{label:<13} {:>12} {:>10} {:>10} {:>10}\n",
                    0, "-", "-", "-"
                )),
            }
        }
        out
    }

    /// Renders two reports side by side, paper-table style: one row per
    /// bucket with both predictors' MAE/P50/P90 columns.
    ///
    /// # Panics
    /// Panics if the two reports have different row structures.
    pub fn render_abs_side_by_side(
        &self,
        other: &BucketReport,
        title: &str,
        self_name: &str,
        other_name: &str,
    ) -> String {
        assert_eq!(self.rows.len(), other.rows.len(), "row structure mismatch");
        let mut out = format!(
            "{title}\n{:<13} {:>10} | {:^32} | {:^32}\n{:<13} {:>10} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10}\n",
            "", "", self_name, other_name,
            "Exec-time", "# Queries", "MAE", "P50-AE", "P90-AE", "MAE", "P50-AE", "P90-AE"
        );
        for (a, b) in self.rows.iter().zip(&other.rows) {
            let label = a.bucket.map(|x| x.label()).unwrap_or("Overall");
            let cell = |s: Option<AbsErrorSummary>| -> (String, String, String) {
                match s {
                    Some(s) => (
                        format!("{:.3}", s.mae),
                        format!("{:.3}", s.p50),
                        format!("{:.3}", s.p90),
                    ),
                    None => ("-".into(), "-".into(), "-".into()),
                }
            };
            let (am, a5, a9) = cell(a.abs);
            let (bm, b5, b9) = cell(b.abs);
            out.push_str(&format!(
                "{label:<13} {:>10} | {am:>10} {a5:>10} {a9:>10} | {bm:>10} {b5:>10} {b9:>10}\n",
                a.count()
            ));
        }
        out
    }

    /// Renders the Q-error columns (`label  #queries  MQE  P50-QE  P90-QE`).
    pub fn render_q(&self, title: &str) -> String {
        let mut out = format!(
            "{title}\n{:<13} {:>12} {:>10} {:>10} {:>10}\n",
            "Exec-time", "# Queries", "MQE", "P50-QE", "P90-QE"
        );
        for row in &self.rows {
            let label = row.bucket.map(|b| b.label()).unwrap_or("Overall");
            match row.q {
                Some(q) => out.push_str(&format!(
                    "{label:<13} {:>12} {:>10.3} {:>10.3} {:>10.3}\n",
                    q.count, q.mqe, q.p50, q.p90
                )),
                None => out.push_str(&format!(
                    "{label:<13} {:>12} {:>10} {:>10} {:>10}\n",
                    0, "-", "-", "-"
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(ExecTimeBucket::of(0.0), ExecTimeBucket::UpTo10s);
        assert_eq!(ExecTimeBucket::of(9.999), ExecTimeBucket::UpTo10s);
        assert_eq!(ExecTimeBucket::of(10.0), ExecTimeBucket::From10To60s);
        assert_eq!(ExecTimeBucket::of(59.999), ExecTimeBucket::From10To60s);
        assert_eq!(ExecTimeBucket::of(60.0), ExecTimeBucket::From60To120s);
        assert_eq!(ExecTimeBucket::of(120.0), ExecTimeBucket::From120To300s);
        assert_eq!(ExecTimeBucket::of(300.0), ExecTimeBucket::Over300s);
        assert_eq!(ExecTimeBucket::of(1e9), ExecTimeBucket::Over300s);
    }

    #[test]
    fn report_counts_partition_overall() {
        let actual = [1.0, 5.0, 30.0, 90.0, 200.0, 500.0, 2.0];
        let pred = [1.0; 7];
        let r = BucketReport::from_pairs(&actual, &pred).unwrap();
        let overall = r.overall().count();
        let sum: usize = ExecTimeBucket::ALL
            .iter()
            .map(|&b| r.bucket(b).count())
            .sum();
        assert_eq!(overall, 7);
        assert_eq!(sum, overall);
        assert_eq!(r.bucket(ExecTimeBucket::UpTo10s).count(), 3);
        assert_eq!(r.bucket(ExecTimeBucket::Over300s).count(), 1);
    }

    #[test]
    fn empty_buckets_render_dash() {
        let actual = [1.0, 2.0];
        let pred = [1.5, 2.5];
        let r = BucketReport::from_pairs(&actual, &pred).unwrap();
        assert!(r.bucket(ExecTimeBucket::Over300s).abs.is_none());
        let text = r.render_abs("t");
        assert!(text.contains("300s+"));
        assert!(text.contains('-'));
    }

    #[test]
    fn render_contains_all_labels() {
        let actual = [1.0, 15.0, 70.0, 150.0, 400.0];
        let pred = [1.0, 10.0, 60.0, 100.0, 300.0];
        let r = BucketReport::from_pairs(&actual, &pred).unwrap();
        let abs = r.render_abs("Table 1");
        let q = r.render_q("Table 2");
        for b in ExecTimeBucket::ALL {
            assert!(abs.contains(b.label()));
            assert!(q.contains(b.label()));
        }
        assert!(abs.contains("Overall"));
    }

    #[test]
    fn side_by_side_renders_both_columns() {
        let actual = [1.0, 15.0, 70.0, 150.0, 400.0];
        let a = BucketReport::from_pairs(&actual, &[1.0, 10.0, 60.0, 100.0, 300.0]).unwrap();
        let b = BucketReport::from_pairs(&actual, &[2.0, 20.0, 80.0, 200.0, 500.0]).unwrap();
        let text = a.render_abs_side_by_side(&b, "Table 1", "Stage", "AutoWLM");
        assert!(text.contains("Stage"));
        assert!(text.contains("AutoWLM"));
        assert!(text.contains("Overall"));
        for bucket in ExecTimeBucket::ALL {
            assert!(text.contains(bucket.label()));
        }
        // Every non-header row has both predictors' numbers.
        assert!(text.lines().count() >= 8);
    }

    #[test]
    #[should_panic(expected = "row structure mismatch")]
    fn side_by_side_rejects_mismatched_reports() {
        let a = BucketReport::from_pairs(&[1.0], &[1.0]).unwrap();
        let mut b = BucketReport::from_pairs(&[1.0], &[1.0]).unwrap();
        b.rows.pop();
        let _ = a.render_abs_side_by_side(&b, "t", "x", "y");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(BucketReport::from_pairs(&[], &[]).is_none());
        assert!(BucketReport::from_pairs(&[1.0], &[]).is_none());
    }
}
