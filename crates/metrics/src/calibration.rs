//! Calibration and rank-correlation diagnostics.
//!
//! The paper argues error bounds are essential for downstream tasks (§3,
//! "High-confidence predictions"). These helpers quantify how trustworthy
//! the bounds actually are:
//!
//! * [`interval_coverage`] — the fraction of true values falling inside
//!   their predicted intervals (a well-calibrated 95% interval covers ≈95%);
//! * [`spearman`] — rank correlation, a scale-free sanity check that
//!   predicted uncertainty orders observed error (the correlation behind a
//!   good PRR score).

/// Fraction of `(truth, lo, hi)` triples with `lo <= truth <= hi`.
///
/// This is the single coverage implementation in the workspace — the replay
/// experiments, the serve `Stats.interval_coverage` counter, and
/// `bench_drift` all funnel through it so "coverage" means the same thing
/// everywhere. Edge cases are explicit rather than silent:
///
/// * empty input → `None` (coverage of nothing is undefined, not `0.0`);
/// * an inverted (`lo > hi`) or NaN-bounded interval anywhere → `None`
///   (the interval *set* is invalid — a caller bug, not a miss);
/// * a degenerate point interval (`lo == hi`, e.g. σ = 0) is **valid** and
///   covers exactly when `truth == lo`;
/// * infinite bounds are valid (a one-sided or unbounded interval);
/// * a NaN truth inside a valid interval counts as uncovered (NaN is not
///   inside anything).
pub fn interval_coverage(triples: &[(f64, f64, f64)]) -> Option<f64> {
    if triples.is_empty() {
        return None;
    }
    if triples
        .iter()
        .any(|&(_, lo, hi)| lo > hi || lo.is_nan() || hi.is_nan())
    {
        return None;
    }
    let covered = triples
        .iter()
        .filter(|&&(t, lo, hi)| (lo..=hi).contains(&t))
        .count();
    Some(covered as f64 / triples.len() as f64)
}

/// Spearman rank correlation of two equal-length samples, in `[-1, 1]`.
/// Ties receive average ranks. Returns `None` on empty/mismatched input or
/// when either side is constant (correlation undefined).
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.len() != ys.len() {
        return None;
    }
    let rx = average_ranks(xs)?;
    let ry = average_ranks(ys)?;
    pearson(&rx, &ry)
}

/// Average (fractional) ranks, handling ties; `None` if any value is NaN.
fn average_ranks(xs: &[f64]) -> Option<Vec<f64>> {
    if xs.iter().any(|x| x.is_nan()) {
        return None;
    }
    let mut order: Vec<usize> = (0..xs.len()).collect();
    order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("no NaN"));
    let mut ranks = vec![0.0; xs.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg;
        }
        i = j + 1;
    }
    Some(ranks)
}

fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx <= 0.0 || vy <= 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn coverage_basic() {
        let triples = [
            (1.0, 0.0, 2.0),
            (5.0, 0.0, 2.0),
            (2.0, 2.0, 2.0),
            (3.0, 1.0, 4.0),
        ];
        assert_eq!(interval_coverage(&triples), Some(0.75));
        assert_eq!(interval_coverage(&[]), None);
        assert_eq!(interval_coverage(&[(1.0, 2.0, 0.0)]), None); // inverted
    }

    #[test]
    fn coverage_degenerate_point_intervals() {
        // σ = 0 collapses an interval to a point; that is a valid interval
        // covering exactly its own value.
        assert_eq!(interval_coverage(&[(2.0, 2.0, 2.0)]), Some(1.0));
        assert_eq!(interval_coverage(&[(2.0001, 2.0, 2.0)]), Some(0.0));
        assert_eq!(
            interval_coverage(&[(0.0, 0.0, 0.0), (0.0, -0.0, 0.0)]),
            Some(1.0)
        );
    }

    #[test]
    fn coverage_non_finite_inputs() {
        // NaN bounds invalidate the interval set.
        assert_eq!(interval_coverage(&[(1.0, f64::NAN, 2.0)]), None);
        assert_eq!(interval_coverage(&[(1.0, 0.0, f64::NAN)]), None);
        // Infinite bounds are legitimate one-sided intervals.
        assert_eq!(
            interval_coverage(&[(1.0, f64::NEG_INFINITY, f64::INFINITY)]),
            Some(1.0)
        );
        assert_eq!(
            interval_coverage(&[(5.0, f64::NEG_INFINITY, 4.0)]),
            Some(0.0)
        );
        // NaN truth inside a valid interval is simply uncovered.
        assert_eq!(interval_coverage(&[(f64::NAN, 0.0, 1.0)]), Some(0.0));
        assert_eq!(
            interval_coverage(&[(f64::NAN, 0.0, 1.0), (0.5, 0.0, 1.0)]),
            Some(0.5)
        );
    }

    #[test]
    fn spearman_perfect_monotone() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [4.0, 3.0, 2.0, 1.0];
        assert!((spearman(&xs, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &down).unwrap() + 1.0).abs() < 1e-12);
        // Nonlinear but monotone is still 1.
        let exp = [2.7, 7.4, 20.1, 54.6];
        assert!((spearman(&xs, &exp).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_ties_and_degenerate() {
        let s = spearman(&[1.0, 1.0, 2.0, 2.0], &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!(s > 0.7 && s <= 1.0, "s={s}");
        assert_eq!(spearman(&[1.0, 1.0], &[2.0, 3.0]), None); // constant xs
        assert_eq!(spearman(&[], &[]), None);
        assert_eq!(spearman(&[1.0], &[1.0, 2.0]), None);
    }

    #[test]
    fn ranks_average_on_ties() {
        let r = average_ranks(&[10.0, 20.0, 10.0]).unwrap();
        assert_eq!(r, vec![1.5, 3.0, 1.5]);
    }

    proptest! {
        #[test]
        fn prop_spearman_bounded(
            pairs in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 3..100)
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(s) = spearman(&xs, &ys) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
            }
        }

        #[test]
        fn prop_coverage_in_unit_range(
            triples in proptest::collection::vec((0.0f64..10.0, 0.0f64..5.0, 5.0f64..10.0), 1..50)
        ) {
            let c = interval_coverage(&triples).unwrap();
            prop_assert!((0.0..=1.0).contains(&c));
        }
    }
}
