//! Log-scale histograms for latency distributions.
//!
//! Fig. 1b of the paper shows the distribution of query latency across the
//! Redshift fleet from the 0.01th to the 99.99th percentile on a log axis.
//! [`LogHistogram`] accumulates samples into logarithmically spaced buckets
//! and can report bucket densities and approximate quantiles without keeping
//! the raw samples.

use serde::{Deserialize, Serialize};

/// Histogram over `[min, max)` with logarithmically spaced bucket edges, plus
/// underflow/overflow buckets.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogHistogram {
    min: f64,
    max: f64,
    log_min: f64,
    log_range: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl LogHistogram {
    /// Creates a histogram spanning `[min, max)` with `buckets` log-spaced
    /// bins. Panics if `min <= 0`, `max <= min`, or `buckets == 0`.
    pub fn new(min: f64, max: f64, buckets: usize) -> Self {
        assert!(min > 0.0, "log histogram requires min > 0");
        assert!(max > min, "max must exceed min");
        assert!(buckets > 0, "need at least one bucket");
        Self {
            min,
            max,
            log_min: min.ln(),
            log_range: max.ln() - min.ln(),
            counts: vec![0; buckets],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// A histogram suitable for fleet query latencies: 1 ms to 10 hours,
    /// 120 buckets.
    pub fn for_latencies() -> Self {
        Self::new(1e-3, 36_000.0, 120)
    }

    /// Records one sample (seconds). Non-finite samples are counted as
    /// overflow.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if !x.is_finite() || x >= self.max {
            self.overflow += 1;
        } else if x < self.min {
            self.underflow += 1;
        } else {
            let frac = (x.ln() - self.log_min) / self.log_range;
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples below `min`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above `max` (or non-finite).
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Lower edge of bucket `i`.
    pub fn bucket_low(&self, i: usize) -> f64 {
        (self.log_min + self.log_range * i as f64 / self.counts.len() as f64).exp()
    }

    /// Upper edge of bucket `i`.
    pub fn bucket_high(&self, i: usize) -> f64 {
        self.bucket_low(i + 1)
    }

    /// Bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Fraction of samples at or below `x` (empirical CDF on bucket
    /// granularity; underflow counts as ≤ everything in range).
    pub fn cdf(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if x < self.min {
            return 0.0;
        }
        let mut acc = self.underflow;
        for i in 0..self.counts.len() {
            if self.bucket_high(i) <= x {
                acc += self.counts[i];
            } else if self.bucket_low(i) <= x {
                // Partial bucket: assume uniform within the bucket (in log space).
                let lo = self.bucket_low(i).ln();
                let hi = self.bucket_high(i).ln();
                let frac = ((x.ln() - lo) / (hi - lo)).clamp(0.0, 1.0);
                acc += (self.counts[i] as f64 * frac) as u64;
            }
        }
        acc as f64 / self.total as f64
    }

    /// Approximate quantile from bucket boundaries; `None` if empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let target = q * self.total as f64;
        let mut acc = self.underflow as f64;
        if acc >= target {
            return Some(self.min);
        }
        for i in 0..self.counts.len() {
            let c = self.counts[i] as f64;
            if acc + c >= target && c > 0.0 {
                let frac = ((target - acc) / c).clamp(0.0, 1.0);
                let lo = self.bucket_low(i).ln();
                let hi = self.bucket_high(i).ln();
                return Some((lo + (hi - lo) * frac).exp());
            }
            acc += c;
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(low, high, count)` triples, for plotting.
    pub fn dense_buckets(&self) -> Vec<(f64, f64, u64)> {
        (0..self.counts.len())
            .filter(|&i| self.counts[i] > 0)
            .map(|i| (self.bucket_low(i), self.bucket_high(i), self.counts[i]))
            .collect()
    }

    /// Merges another histogram with identical configuration. Panics on
    /// mismatched shape.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert_eq!(self.counts.len(), other.counts.len());
        assert!((self.min - other.min).abs() < 1e-12 && (self.max - other.max).abs() < 1e-12);
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn buckets_cover_range() {
        let h = LogHistogram::new(0.001, 1000.0, 60);
        assert!((h.bucket_low(0) - 0.001).abs() < 1e-12);
        assert!((h.bucket_high(59) - 1000.0).abs() < 1e-6);
        // Edges increase monotonically.
        for i in 0..59 {
            assert!(h.bucket_high(i) > h.bucket_low(i));
            assert!((h.bucket_high(i) - h.bucket_low(i + 1)).abs() < 1e-9);
        }
    }

    #[test]
    fn records_land_in_correct_buckets() {
        let mut h = LogHistogram::new(1.0, 100.0, 2); // buckets [1,10), [10,100)
        h.record(2.0);
        h.record(5.0);
        h.record(50.0);
        assert_eq!(h.counts(), &[2, 1]);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn under_and_overflow() {
        let mut h = LogHistogram::new(1.0, 10.0, 4);
        h.record(0.5);
        h.record(10.0);
        h.record(1e9);
        h.record(f64::NAN);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 3);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn quantile_of_single_bucket_mass() {
        let mut h = LogHistogram::new(0.001, 1000.0, 60);
        for _ in 0..100 {
            h.record(1.0);
        }
        let q50 = h.quantile(0.5).unwrap();
        // All mass is in the bucket containing 1.0, so q50 must be within it.
        assert!(q50 > 0.5 && q50 < 2.0, "q50={q50}");
    }

    #[test]
    fn cdf_monotone() {
        let mut h = LogHistogram::for_latencies();
        for i in 1..1000u32 {
            h.record(i as f64 * 0.01);
        }
        let mut prev = 0.0;
        for x in [0.001, 0.01, 0.1, 1.0, 5.0, 9.0, 100.0] {
            let c = h.cdf(x);
            assert!(c + 1e-9 >= prev, "cdf not monotone at {x}");
            prev = c;
        }
        assert!(h.cdf(1e6) >= 0.99);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = LogHistogram::new(1.0, 100.0, 4);
        let mut b = LogHistogram::new(1.0, 100.0, 4);
        a.record(2.0);
        b.record(2.0);
        b.record(50.0);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.counts().iter().sum::<u64>(), 3);
    }

    #[test]
    #[should_panic(expected = "min > 0")]
    fn rejects_nonpositive_min() {
        LogHistogram::new(0.0, 1.0, 4);
    }

    proptest! {
        #[test]
        fn prop_total_is_conserved(xs in proptest::collection::vec(1e-4f64..1e5, 0..500)) {
            let mut h = LogHistogram::for_latencies();
            xs.iter().for_each(|&x| h.record(x));
            let bucket_sum: u64 = h.counts().iter().sum();
            prop_assert_eq!(bucket_sum + h.underflow() + h.overflow(), xs.len() as u64);
        }

        #[test]
        fn prop_quantiles_monotone(
            xs in proptest::collection::vec(1e-3f64..1e4, 1..300),
            q1 in 0.0f64..=1.0,
            q2 in 0.0f64..=1.0,
        ) {
            let mut h = LogHistogram::for_latencies();
            xs.iter().for_each(|&x| h.record(x));
            let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(h.quantile(lo).unwrap() <= h.quantile(hi).unwrap() + 1e-9);
        }
    }
}
