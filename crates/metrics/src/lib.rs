//! # stage-metrics
//!
//! Statistical primitives shared by the Stage predictor reproduction:
//!
//! * [`Welford`] — numerically stable running mean/variance (used by the
//!   exec-time cache, paper §4.2 "Optimization 2").
//! * [`mod@quantile`] — exact quantile helpers for reporting P50/P90 errors.
//! * [`error`] — absolute-error and Q-error accuracy summaries (Tables 1–6).
//! * [`buckets`] — the paper's exec-time bucketing (0–10 s, 10–60 s, 60–120 s,
//!   120–300 s, 300 s+) and per-bucket accuracy tables.
//! * [`prr`] — the prediction-rejection ratio scoring rule used to judge the
//!   local model's uncertainty quality (Figs. 10–11).
//! * [`histogram`] — log-scale latency histograms (Fig. 1b-style summaries).
//!
//! All statistics are deterministic and allocation-light; nothing here draws
//! randomness.

pub mod buckets;
pub mod calibration;
pub mod error;
pub mod histogram;
pub mod prr;
pub mod quantile;
pub mod welford;

pub use buckets::{BucketReport, BucketRow, ExecTimeBucket};
pub use calibration::{interval_coverage, spearman};
pub use error::{AbsErrorSummary, QErrorSummary};
pub use histogram::LogHistogram;
pub use prr::{prr_score, PrrCurves};
pub use quantile::{percentile, quantile};
pub use welford::Welford;
