//! Concurrency-scaling cluster sizing.
//!
//! When Redshift's workload manager bursts a query to a concurrency-scaling
//! cluster, "the optimal cluster size will be chosen based on the predicted
//! exec-time on the candidate cluster sizes" (paper §2.1). This module
//! implements that decision: given per-candidate exec-time predictions and a
//! price model, pick the size with the best latency/cost trade-off under an
//! optional latency objective (SLA).

use serde::{Deserialize, Serialize};

/// One candidate burst-cluster size with its predicted exec-time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingCandidate {
    /// Number of nodes in the candidate cluster.
    pub n_nodes: u32,
    /// Predicted exec-time of the query on this candidate (seconds).
    pub predicted_secs: f64,
}

/// Pricing and objective for the sizing decision.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SizingPolicy {
    /// Cost per node-second (relative units are fine).
    pub cost_per_node_sec: f64,
    /// Optional latency target: candidates meeting it are preferred, and
    /// the cheapest of those wins. Without one, the cheapest
    /// (cost = nodes × predicted time) candidate wins.
    pub latency_target_secs: Option<f64>,
    /// Fixed startup overhead added to every burst execution (seconds).
    pub startup_secs: f64,
}

impl Default for SizingPolicy {
    fn default() -> Self {
        Self {
            cost_per_node_sec: 1.0,
            latency_target_secs: None,
            startup_secs: 30.0,
        }
    }
}

/// The chosen size and its projected figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingDecision {
    /// Chosen node count.
    pub n_nodes: u32,
    /// Projected latency including startup (seconds).
    pub projected_latency_secs: f64,
    /// Projected cost (node-seconds × price).
    pub projected_cost: f64,
    /// Whether the latency target (if any) is met.
    pub meets_target: bool,
}

/// Picks the best candidate under the policy. Returns `None` on empty input
/// or non-finite predictions.
///
/// Selection rule:
/// 1. compute latency = startup + predicted, cost = nodes × latency × price;
/// 2. if a latency target exists and some candidates meet it, choose the
///    *cheapest* candidate among those;
/// 3. otherwise choose the candidate minimizing latency first, breaking ties
///    by cost (when nothing meets the target, latency is the emergency);
/// 4. without a target, choose the cheapest candidate, breaking ties by
///    latency.
pub fn choose_cluster_size(
    candidates: &[SizingCandidate],
    policy: &SizingPolicy,
) -> Option<SizingDecision> {
    if candidates.is_empty()
        || candidates
            .iter()
            .any(|c| !c.predicted_secs.is_finite() || c.predicted_secs < 0.0 || c.n_nodes == 0)
    {
        return None;
    }
    let projected: Vec<SizingDecision> = candidates
        .iter()
        .map(|c| {
            let latency = policy.startup_secs + c.predicted_secs;
            let cost = c.n_nodes as f64 * latency * policy.cost_per_node_sec;
            SizingDecision {
                n_nodes: c.n_nodes,
                projected_latency_secs: latency,
                projected_cost: cost,
                meets_target: policy
                    .latency_target_secs
                    .map(|t| latency <= t)
                    .unwrap_or(true),
            }
        })
        .collect();

    let by_cost = |a: &&SizingDecision, b: &&SizingDecision| {
        a.projected_cost
            .partial_cmp(&b.projected_cost)
            .expect("finite")
            .then(
                a.projected_latency_secs
                    .partial_cmp(&b.projected_latency_secs)
                    .expect("finite"),
            )
    };
    let chosen = if policy.latency_target_secs.is_some() {
        let meeting: Vec<&SizingDecision> = projected.iter().filter(|d| d.meets_target).collect();
        if !meeting.is_empty() {
            **meeting
                .iter()
                .min_by(|a, b| by_cost(a, b))
                .expect("non-empty")
        } else {
            // Nothing meets the SLA: minimize latency, tie-break by cost.
            *projected
                .iter()
                .min_by(|a, b| {
                    a.projected_latency_secs
                        .partial_cmp(&b.projected_latency_secs)
                        .expect("finite")
                        .then(
                            a.projected_cost
                                .partial_cmp(&b.projected_cost)
                                .expect("finite"),
                        )
                })
                .expect("non-empty")
        }
    } else {
        *projected
            .iter()
            .min_by(|a, b| by_cost(a, b))
            .expect("non-empty")
    };
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ideal scaling: predicted time halves as nodes double.
    fn scaling_candidates(base_secs: f64) -> Vec<SizingCandidate> {
        [2u32, 4, 8, 16]
            .iter()
            .map(|&n| SizingCandidate {
                n_nodes: n,
                predicted_secs: base_secs * 2.0 / n as f64,
            })
            .collect()
    }

    #[test]
    fn without_target_picks_cheapest() {
        // With perfect scaling, compute cost (nodes × exec) is constant, so
        // the startup overhead dominates: fewer nodes = cheaper.
        let d = choose_cluster_size(&scaling_candidates(600.0), &SizingPolicy::default()).unwrap();
        assert_eq!(d.n_nodes, 2);
        assert!(d.meets_target);
    }

    #[test]
    fn sla_pushes_to_bigger_clusters() {
        let policy = SizingPolicy {
            latency_target_secs: Some(200.0),
            ..SizingPolicy::default()
        };
        // base 600 on 2 nodes -> 630s latency; needs 8 nodes for 180s.
        let d = choose_cluster_size(&scaling_candidates(600.0), &policy).unwrap();
        assert_eq!(d.n_nodes, 8);
        assert!(d.meets_target);
        assert!(d.projected_latency_secs <= 200.0);
    }

    #[test]
    fn cheapest_among_sla_compliant_wins() {
        let policy = SizingPolicy {
            latency_target_secs: Some(1000.0), // everything complies
            ..SizingPolicy::default()
        };
        let d = choose_cluster_size(&scaling_candidates(600.0), &policy).unwrap();
        assert_eq!(d.n_nodes, 2, "all comply -> cheapest");
    }

    #[test]
    fn impossible_sla_minimizes_latency() {
        let policy = SizingPolicy {
            latency_target_secs: Some(1.0),
            ..SizingPolicy::default()
        };
        let d = choose_cluster_size(&scaling_candidates(600.0), &policy).unwrap();
        assert_eq!(d.n_nodes, 16, "nothing complies -> fastest");
        assert!(!d.meets_target);
    }

    #[test]
    fn sublinear_scaling_caps_useful_size() {
        // Diminishing returns: doubling nodes buys only 20% speedup beyond
        // 4 nodes — cost then grows with size, so 4 should win without SLA.
        let candidates = vec![
            SizingCandidate {
                n_nodes: 2,
                predicted_secs: 400.0,
            },
            SizingCandidate {
                n_nodes: 4,
                predicted_secs: 210.0,
            },
            SizingCandidate {
                n_nodes: 8,
                predicted_secs: 170.0,
            },
            SizingCandidate {
                n_nodes: 16,
                predicted_secs: 150.0,
            },
        ];
        let policy = SizingPolicy {
            startup_secs: 0.0,
            ..SizingPolicy::default()
        };
        let d = choose_cluster_size(&candidates, &policy).unwrap();
        assert_eq!(d.n_nodes, 2, "800 node-secs beats 840/1360/2400");
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(choose_cluster_size(&[], &SizingPolicy::default()).is_none());
        let bad = vec![SizingCandidate {
            n_nodes: 0,
            predicted_secs: 1.0,
        }];
        assert!(choose_cluster_size(&bad, &SizingPolicy::default()).is_none());
        let nan = vec![SizingCandidate {
            n_nodes: 2,
            predicted_secs: f64::NAN,
        }];
        assert!(choose_cluster_size(&nan, &SizingPolicy::default()).is_none());
    }
}
