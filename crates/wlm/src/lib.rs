//! # stage-wlm
//!
//! An event-driven replay simulator of Redshift's workload manager
//! (AutoWLM, paper §2.1 / §5.2). This is the instrument the paper itself
//! uses for its end-to-end evaluation: queries are replayed with their
//! *logged* exec-times, while the scheduler routes and orders them by
//! *predicted* exec-time. Better predictions → better admission/priority
//! decisions → lower end-to-end latency (wait + execution); the exec-time
//! itself is held fixed, exactly as in the paper's simulation.
//!
//! Model:
//!
//! * queries predicted shorter than `short_threshold_secs` enter a dedicated
//!   **short queue** with its own slots; the rest enter the **long queue**;
//! * within each queue, priority is shortest-predicted-job-first;
//! * each queue has a fixed number of concurrency slots; a misrouted long
//!   query blocks a short slot — head-of-line blocking, the paper's
//!   canonical failure mode;
//! * optional **SQA runtime eviction**: a query overrunning the short
//!   queue's limit is killed and restarted in the long queue (as Redshift's
//!   short-query acceleration does), so misroutes waste work instead of
//!   silently stealing short-queue capacity;
//! * optional **concurrency scaling**: when the long queue backs up beyond a
//!   threshold, burst slots activate (modeling Redshift's concurrency
//!   scaling clusters).

pub mod sim;
pub mod sizing;
pub mod stats;

pub use sim::{QueueKind, SimQuery, SimResult, Simulation, WlmConfig, WlmSummary};
pub use sizing::{choose_cluster_size, SizingCandidate, SizingDecision, SizingPolicy};
pub use stats::{queue_depth_timeline, queue_stats, QueueStats};
