//! The workload-manager simulation proper.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One query to replay: when it arrived, how long it actually ran, and what
/// the predictor under evaluation said it would run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimQuery {
    /// Arrival time (seconds since replay start); input must be sorted.
    pub arrival_secs: f64,
    /// Logged true execution time in seconds.
    pub true_exec_secs: f64,
    /// Predicted execution time in seconds.
    pub predicted_secs: f64,
}

/// Which queue a query was routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueueKind {
    /// Dedicated short-query queue.
    Short,
    /// Long-running queue (and burst slots).
    Long,
}

/// Scheduling outcome for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResult {
    /// Index into the input slice.
    pub query: usize,
    /// Queue the query finally completed in.
    pub queue: QueueKind,
    /// Arrival time.
    pub arrival_secs: f64,
    /// Start of the (final) execution attempt.
    pub start_secs: f64,
    /// Completion time.
    pub finish_secs: f64,
    /// Whether the query was first admitted to the short queue, overran the
    /// SQA limit, and was restarted in the long queue.
    pub evicted_from_sqa: bool,
}

impl SimResult {
    /// Queueing delay.
    pub fn wait_secs(&self) -> f64 {
        self.start_secs - self.arrival_secs
    }

    /// End-to-end latency (wait + execution).
    pub fn latency_secs(&self) -> f64 {
        self.finish_secs - self.arrival_secs
    }
}

/// Workload-manager configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WlmConfig {
    /// Predicted exec-time below which a query is routed to the short queue.
    pub short_threshold_secs: f64,
    /// Concurrency slots dedicated to the short queue.
    pub short_slots: usize,
    /// Concurrency slots for the long queue.
    pub long_slots: usize,
    /// Enable burst (concurrency-scaling) slots for the long queue.
    pub enable_scaling: bool,
    /// Long-queue length that triggers burst slots.
    pub scaling_trigger_len: usize,
    /// Number of burst slots while triggered.
    pub scaling_slots: usize,
    /// Short-queue (SQA) runtime limit: a query running in the short queue
    /// longer than this is evicted and restarted in the long queue, wasting
    /// the work done so far — Redshift's guard against head-of-line
    /// blocking by mispredicted long queries. `None` disables eviction.
    pub sqa_max_runtime_secs: Option<f64>,
}

impl Default for WlmConfig {
    fn default() -> Self {
        Self {
            short_threshold_secs: 5.0,
            short_slots: 3,
            long_slots: 3,
            enable_scaling: false,
            scaling_trigger_len: 10,
            scaling_slots: 5,
            sqa_max_runtime_secs: None,
        }
    }
}

/// Aggregate latency statistics over a replay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WlmSummary {
    /// Number of queries.
    pub count: usize,
    /// Mean end-to-end latency.
    pub avg_latency: f64,
    /// Median latency.
    pub p50_latency: f64,
    /// Tail (P90) latency.
    pub p90_latency: f64,
    /// Mean queueing delay.
    pub avg_wait: f64,
    /// Fraction routed to the short queue.
    pub short_fraction: f64,
}

/// f64 wrapper ordered for min-heaps (panics on NaN at construction).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl OrdF64 {
    fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "NaN time in simulation");
        Self(v)
    }
}

impl Eq for OrdF64 {}
impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("no NaN by construction")
    }
}

/// Min-heap entry for waiting queries: (predicted, arrival order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Waiting {
    predicted: OrdF64,
    seq: usize,
}
impl PartialOrd for Waiting {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Waiting {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for BinaryHeap max-heap -> min by (predicted, seq).
        other
            .predicted
            .cmp(&self.predicted)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap entry for running queries: completion time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Running {
    finish: OrdF64,
    seq: usize,
    queue: QueueKind,
    /// The query will not complete at `finish` — it hits the SQA limit and
    /// must be requeued into the long queue.
    evicts: bool,
}
impl PartialOrd for Running {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Running {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .finish
            .cmp(&self.finish)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The replay simulator. Construct with a config, then call
/// [`Simulation::run`].
#[derive(Debug, Clone, Default)]
pub struct Simulation {
    config: WlmConfig,
}

impl Simulation {
    /// Creates a simulator.
    pub fn new(config: WlmConfig) -> Self {
        Self { config }
    }

    /// Replays `queries` (must be sorted by arrival time) and returns one
    /// [`SimResult`] per query, in input order.
    ///
    /// # Panics
    /// Panics if arrivals are unsorted or any time is NaN/negative.
    pub fn run(&self, queries: &[SimQuery]) -> Vec<SimResult> {
        for w in queries.windows(2) {
            assert!(
                w[1].arrival_secs >= w[0].arrival_secs,
                "queries must be sorted by arrival"
            );
        }
        let cfg = &self.config;
        let mut results: Vec<Option<SimResult>> = vec![None; queries.len()];

        let mut short_queue: BinaryHeap<Waiting> = BinaryHeap::new();
        let mut long_queue: BinaryHeap<Waiting> = BinaryHeap::new();
        let mut running: BinaryHeap<Running> = BinaryHeap::new();
        let mut busy_short = 0usize;
        let mut busy_long = 0usize;
        let mut next_arrival = 0usize;
        let mut now;

        // Starts every query that can start at time `now`.
        let start_ready = |now: f64,
                           short_queue: &mut BinaryHeap<Waiting>,
                           long_queue: &mut BinaryHeap<Waiting>,
                           running: &mut BinaryHeap<Running>,
                           busy_short: &mut usize,
                           busy_long: &mut usize,
                           results: &mut Vec<Option<SimResult>>| {
            while *busy_short < cfg.short_slots {
                let Some(w) = short_queue.pop() else { break };
                let q = &queries[w.seq];
                *busy_short += 1;
                let evicts = cfg
                    .sqa_max_runtime_secs
                    .map(|limit| q.true_exec_secs > limit)
                    .unwrap_or(false);
                let occupied = match cfg.sqa_max_runtime_secs {
                    Some(limit) if evicts => limit,
                    _ => q.true_exec_secs,
                };
                let finish = now + occupied;
                running.push(Running {
                    finish: OrdF64::new(finish),
                    seq: w.seq,
                    queue: QueueKind::Short,
                    evicts,
                });
                results[w.seq] = Some(SimResult {
                    query: w.seq,
                    queue: QueueKind::Short,
                    arrival_secs: q.arrival_secs,
                    start_secs: now,
                    finish_secs: finish,
                    evicted_from_sqa: false,
                });
            }
            loop {
                let effective_slots =
                    if cfg.enable_scaling && long_queue.len() > cfg.scaling_trigger_len {
                        cfg.long_slots + cfg.scaling_slots
                    } else {
                        cfg.long_slots
                    };
                if *busy_long >= effective_slots {
                    break;
                }
                let Some(w) = long_queue.pop() else { break };
                let q = &queries[w.seq];
                *busy_long += 1;
                let finish = now + q.true_exec_secs;
                running.push(Running {
                    finish: OrdF64::new(finish),
                    seq: w.seq,
                    queue: QueueKind::Long,
                    evicts: false,
                });
                let was_evicted = results[w.seq]
                    .map(|r| r.queue == QueueKind::Short)
                    .unwrap_or(false);
                results[w.seq] = Some(SimResult {
                    query: w.seq,
                    queue: QueueKind::Long,
                    arrival_secs: q.arrival_secs,
                    start_secs: now,
                    finish_secs: finish,
                    evicted_from_sqa: was_evicted,
                });
            }
        };

        loop {
            let arrival_time = queries.get(next_arrival).map(|q| q.arrival_secs);
            let completion_time = running.peek().map(|r| r.finish.0);
            let take_arrival = match (arrival_time, completion_time) {
                (None, None) => break,
                (Some(a), Some(c)) => a <= c,
                (Some(_), None) => true,
                (None, Some(_)) => false,
            };
            if take_arrival {
                let a = arrival_time.expect("checked");
                {
                    now = a;
                    let q = &queries[next_arrival];
                    assert!(
                        q.true_exec_secs >= 0.0 && !q.predicted_secs.is_nan(),
                        "invalid query at {next_arrival}"
                    );
                    let entry = Waiting {
                        predicted: OrdF64::new(q.predicted_secs),
                        seq: next_arrival,
                    };
                    if q.predicted_secs < cfg.short_threshold_secs {
                        short_queue.push(entry);
                    } else {
                        long_queue.push(entry);
                    }
                    next_arrival += 1;
                }
            } else {
                now = completion_time.expect("checked");
                // Complete everything finishing at this instant.
                while running.peek().map(|r| r.finish.0 <= now).unwrap_or(false) {
                    let r = running.pop().expect("peeked");
                    match r.queue {
                        QueueKind::Short => busy_short -= 1,
                        QueueKind::Long => busy_long -= 1,
                    }
                    if r.evicts {
                        // SQA eviction: restart in the long queue; rank it
                        // by at least the limit it just overran.
                        let limit = cfg.sqa_max_runtime_secs.expect("evicts implies limit");
                        let pred = queries[r.seq].predicted_secs.max(limit);
                        long_queue.push(Waiting {
                            predicted: OrdF64::new(pred),
                            seq: r.seq,
                        });
                    }
                }
            }
            start_ready(
                now,
                &mut short_queue,
                &mut long_queue,
                &mut running,
                &mut busy_short,
                &mut busy_long,
                &mut results,
            );
        }

        results
            .into_iter()
            .map(|r| r.expect("every query eventually scheduled"))
            .collect()
    }

    /// Replays and summarizes.
    pub fn summarize(&self, queries: &[SimQuery]) -> Option<WlmSummary> {
        if queries.is_empty() {
            return None;
        }
        let results = self.run(queries);
        Some(Self::summary_of(&results))
    }

    /// Aggregates a result set into a [`WlmSummary`].
    pub fn summary_of(results: &[SimResult]) -> WlmSummary {
        let mut latencies: Vec<f64> = results.iter().map(SimResult::latency_secs).collect();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
        let n = latencies.len();
        let pct = |p: f64| -> f64 {
            let pos = p * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = pos.ceil() as usize;
            latencies[lo] + (latencies[hi] - latencies[lo]) * (pos - lo as f64)
        };
        WlmSummary {
            count: n,
            avg_latency: latencies.iter().sum::<f64>() / n as f64,
            p50_latency: pct(0.5),
            p90_latency: pct(0.9),
            avg_wait: results.iter().map(SimResult::wait_secs).sum::<f64>() / n as f64,
            short_fraction: results
                .iter()
                .filter(|r| r.queue == QueueKind::Short)
                .count() as f64
                / n as f64,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &WlmConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn q(arrival: f64, exec: f64, pred: f64) -> SimQuery {
        SimQuery {
            arrival_secs: arrival,
            true_exec_secs: exec,
            predicted_secs: pred,
        }
    }

    #[test]
    fn single_query_runs_immediately() {
        let sim = Simulation::new(WlmConfig::default());
        let r = sim.run(&[q(10.0, 2.0, 2.0)]);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].start_secs, 10.0);
        assert_eq!(r[0].finish_secs, 12.0);
        assert_eq!(r[0].wait_secs(), 0.0);
        assert_eq!(r[0].queue, QueueKind::Short);
    }

    #[test]
    fn routing_by_prediction() {
        let sim = Simulation::new(WlmConfig::default());
        let r = sim.run(&[q(0.0, 100.0, 1.0), q(0.0, 1.0, 100.0)]);
        assert_eq!(r[0].queue, QueueKind::Short); // misrouted long query
        assert_eq!(r[1].queue, QueueKind::Long); // misrouted short query
    }

    #[test]
    fn sjf_orders_by_prediction_within_queue() {
        // One slot; three queries arrive together; service order must follow
        // predicted time, not arrival order.
        let cfg = WlmConfig {
            short_slots: 1,
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        // First query occupies the slot; the other three queue up.
        let r = sim.run(&[
            q(0.0, 5.0, 4.0),
            q(0.1, 1.0, 3.0),
            q(0.2, 1.0, 1.0),
            q(0.3, 1.0, 2.0),
        ]);
        // Start order after the first: query 2 (pred 1), 3 (pred 2), 1 (pred 3).
        assert!(r[2].start_secs < r[3].start_secs);
        assert!(r[3].start_secs < r[1].start_secs);
    }

    #[test]
    fn head_of_line_blocking_from_misprediction() {
        // A 300s query mispredicted as 1s hogs the single short slot; ten
        // 0.1s dashboards queue behind it. With a correct prediction it goes
        // to the long queue and the dashboards fly through.
        let cfg = WlmConfig {
            short_slots: 1,
            long_slots: 1,
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        let mut mispredicted = vec![q(0.0, 300.0, 1.0)];
        let mut correct = vec![q(0.0, 300.0, 300.0)];
        for i in 0..10 {
            let arr = 1.0 + i as f64 * 0.1;
            mispredicted.push(q(arr, 0.1, 0.1));
            correct.push(q(arr, 0.1, 0.1));
        }
        let bad = Simulation::summary_of(&sim.run(&mispredicted));
        let good = Simulation::summary_of(&sim.run(&correct));
        assert!(
            bad.avg_latency > 10.0 * good.avg_latency,
            "bad={} good={}",
            bad.avg_latency,
            good.avg_latency
        );
    }

    #[test]
    fn sqa_eviction_restarts_in_long_queue() {
        let cfg = WlmConfig {
            short_slots: 1,
            long_slots: 1,
            sqa_max_runtime_secs: Some(10.0),
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        // A 100 s query mispredicted as 1 s: runs 10 s in SQA, is evicted,
        // restarts in the empty long queue, finishes at 10 + 100.
        let r = sim.run(&[q(0.0, 100.0, 1.0)]);
        assert_eq!(r[0].queue, QueueKind::Long);
        assert!(r[0].evicted_from_sqa);
        assert!((r[0].start_secs - 10.0).abs() < 1e-9);
        assert!((r[0].finish_secs - 110.0).abs() < 1e-9);
        assert!((r[0].latency_secs() - 110.0).abs() < 1e-9);
    }

    #[test]
    fn sqa_eviction_frees_the_short_slot() {
        let cfg = WlmConfig {
            short_slots: 1,
            long_slots: 1,
            sqa_max_runtime_secs: Some(5.0),
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        // Mispredicted long query + a dashboard behind it: the dashboard
        // waits at most the SQA limit, not the full 300 s.
        let r = sim.run(&[q(0.0, 300.0, 1.0), q(1.0, 0.1, 0.1)]);
        assert!(r[1].wait_secs() <= 5.0 + 1e-9, "wait={}", r[1].wait_secs());
        assert!(!r[1].evicted_from_sqa);
        // Without eviction the dashboard is stuck behind the misroute.
        let sim_off = Simulation::new(WlmConfig {
            sqa_max_runtime_secs: None,
            ..cfg
        });
        let r_off = sim_off.run(&[q(0.0, 300.0, 1.0), q(1.0, 0.1, 0.1)]);
        assert!(r_off[1].wait_secs() > 100.0);
    }

    #[test]
    fn short_queries_unaffected_by_sqa_limit() {
        let cfg = WlmConfig {
            sqa_max_runtime_secs: Some(10.0),
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        let r = sim.run(&[q(0.0, 3.0, 2.0)]);
        assert_eq!(r[0].queue, QueueKind::Short);
        assert!(!r[0].evicted_from_sqa);
        assert!((r[0].finish_secs - 3.0).abs() < 1e-9);
    }

    #[test]
    fn conservation_laws() {
        let sim = Simulation::new(WlmConfig::default());
        let queries: Vec<SimQuery> = (0..50)
            .map(|i| q(i as f64 * 0.5, 1.0 + (i % 7) as f64, 1.0 + (i % 5) as f64))
            .collect();
        let r = sim.run(&queries);
        assert_eq!(r.len(), queries.len());
        for (i, res) in r.iter().enumerate() {
            assert_eq!(res.query, i);
            assert!(res.start_secs >= res.arrival_secs - 1e-9);
            assert!((res.finish_secs - res.start_secs - queries[i].true_exec_secs).abs() < 1e-9);
        }
    }

    #[test]
    fn slot_limits_respected() {
        let cfg = WlmConfig {
            short_slots: 2,
            long_slots: 1,
            ..WlmConfig::default()
        };
        let sim = Simulation::new(cfg);
        let queries: Vec<SimQuery> = (0..20).map(|_| q(0.0, 10.0, 1.0)).collect();
        let r = sim.run(&queries);
        // At any time, at most 2 queries overlap (all short-routed).
        let mut points: Vec<(f64, i32)> = Vec::new();
        for res in &r {
            points.push((res.start_secs, 1));
            points.push((res.finish_secs, -1));
        }
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        let mut active = 0;
        for (_, d) in points {
            active += d;
            assert!(active <= 2, "short slots exceeded");
        }
    }

    #[test]
    fn concurrency_scaling_relieves_backlog() {
        let base = WlmConfig {
            short_slots: 1,
            long_slots: 1,
            enable_scaling: false,
            ..WlmConfig::default()
        };
        let scaled = WlmConfig {
            enable_scaling: true,
            scaling_trigger_len: 3,
            scaling_slots: 4,
            ..base
        };
        // A burst of 30 long queries.
        let queries: Vec<SimQuery> = (0..30).map(|i| q(i as f64 * 0.1, 20.0, 20.0)).collect();
        let s_base = Simulation::new(base).summarize(&queries).unwrap();
        let s_scaled = Simulation::new(scaled).summarize(&queries).unwrap();
        assert!(
            s_scaled.avg_latency < 0.5 * s_base.avg_latency,
            "scaling should cut the backlog: base={} scaled={}",
            s_base.avg_latency,
            s_scaled.avg_latency
        );
    }

    #[test]
    fn summary_fields_consistent() {
        let sim = Simulation::new(WlmConfig::default());
        let queries = vec![q(0.0, 1.0, 1.0), q(0.0, 2.0, 2.0), q(0.0, 100.0, 100.0)];
        let s = sim.summarize(&queries).unwrap();
        assert_eq!(s.count, 3);
        assert!(s.p50_latency <= s.p90_latency);
        assert!(s.avg_wait >= 0.0);
        assert!((0.0..=1.0).contains(&s.short_fraction));
        // Two of three are predicted short.
        assert!((s.short_fraction - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let sim = Simulation::new(WlmConfig::default());
        assert!(sim.run(&[]).is_empty());
        assert!(sim.summarize(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "sorted by arrival")]
    fn unsorted_input_rejected() {
        let sim = Simulation::new(WlmConfig::default());
        sim.run(&[q(5.0, 1.0, 1.0), q(1.0, 1.0, 1.0)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn prop_every_query_scheduled_exactly_once(
            raw in proptest::collection::vec((0.0f64..1000.0, 0.001f64..50.0, 0.001f64..500.0), 1..120)
        ) {
            let mut queries: Vec<SimQuery> = raw
                .iter()
                .map(|&(a, e, p)| q(a, e, p))
                .collect();
            queries.sort_by(|a, b| a.arrival_secs.partial_cmp(&b.arrival_secs).unwrap());
            let sim = Simulation::new(WlmConfig::default());
            let r = sim.run(&queries);
            prop_assert_eq!(r.len(), queries.len());
            for (i, res) in r.iter().enumerate() {
                prop_assert_eq!(res.query, i);
                prop_assert!(res.start_secs + 1e-9 >= res.arrival_secs);
                prop_assert!((res.finish_secs - res.start_secs - queries[i].true_exec_secs).abs() < 1e-9);
            }
        }

        #[test]
        fn prop_eviction_mode_invariants(
            raw in proptest::collection::vec((0.0f64..500.0, 0.001f64..120.0, 0.001f64..120.0), 1..100)
        ) {
            let mut queries: Vec<SimQuery> = raw.iter().map(|&(a, e, p)| q(a, e, p)).collect();
            queries.sort_by(|a, b| a.arrival_secs.partial_cmp(&b.arrival_secs).unwrap());
            let limit = 10.0;
            let sim = Simulation::new(WlmConfig {
                sqa_max_runtime_secs: Some(limit),
                ..WlmConfig::default()
            });
            let results = sim.run(&queries);
            prop_assert_eq!(results.len(), queries.len());
            for (i, r) in results.iter().enumerate() {
                let exec = queries[i].true_exec_secs;
                // Final attempt runs to completion.
                prop_assert!((r.finish_secs - r.start_secs - exec).abs() < 1e-9);
                prop_assert!(r.latency_secs() + 1e-9 >= exec);
                if r.evicted_from_sqa {
                    // Paid the wasted SQA occupancy before restarting.
                    prop_assert!(r.latency_secs() + 1e-9 >= exec + limit);
                    prop_assert_eq!(r.queue, QueueKind::Long);
                    prop_assert!(exec > limit);
                }
                // No query still routed Short may exceed the limit.
                if r.queue == QueueKind::Short {
                    prop_assert!(exec <= limit + 1e-9);
                }
            }
        }

        #[test]
        fn prop_perfect_predictions_never_much_worse_than_constant(
            raw in proptest::collection::vec((0.0f64..200.0, 0.001f64..30.0), 5..80)
        ) {
            // Oracle predictions should not lose badly to a constant predictor
            // (it can lose slightly on adversarial edge cases, §5.2).
            let mut arrivals: Vec<(f64, f64)> = raw;
            arrivals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let oracle: Vec<SimQuery> = arrivals.iter().map(|&(a, e)| q(a, e, e)).collect();
            let constant: Vec<SimQuery> = arrivals.iter().map(|&(a, e)| q(a, e, 1.0)).collect();
            let sim = Simulation::new(WlmConfig::default());
            let s_oracle = sim.summarize(&oracle).unwrap();
            let s_const = sim.summarize(&constant).unwrap();
            prop_assert!(
                s_oracle.avg_latency <= s_const.avg_latency * 1.5 + 1.0,
                "oracle={} constant={}", s_oracle.avg_latency, s_const.avg_latency
            );
        }
    }
}
