//! Post-hoc analysis of a WLM replay: per-queue breakdowns, slot
//! utilization, and queue-depth timelines — the observability AutoWLM
//! operators use to understand scheduling behaviour.

use crate::sim::{QueueKind, SimResult, WlmConfig};
use serde::{Deserialize, Serialize};

/// Aggregates for one queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Queries routed here.
    pub count: usize,
    /// Mean queueing delay (seconds).
    pub avg_wait: f64,
    /// Max queueing delay.
    pub max_wait: f64,
    /// Mean end-to-end latency.
    pub avg_latency: f64,
    /// Total busy slot-seconds consumed.
    pub busy_slot_secs: f64,
    /// Busy slot-seconds / (slots × makespan); > 1 is impossible for a
    /// correctly simulated queue.
    pub utilization: f64,
}

/// Per-queue statistics for a result set under the config that produced it.
pub fn queue_stats(results: &[SimResult], config: &WlmConfig) -> [QueueStats; 2] {
    let t_end = results.iter().map(|r| r.finish_secs).fold(0.0f64, f64::max);
    let t_start = results
        .iter()
        .map(|r| r.arrival_secs)
        .fold(f64::INFINITY, f64::min);
    let makespan = if t_start.is_finite() {
        t_end - t_start
    } else {
        0.0
    };
    let mut out = [QueueStats {
        count: 0,
        avg_wait: 0.0,
        max_wait: 0.0,
        avg_latency: 0.0,
        busy_slot_secs: 0.0,
        utilization: 0.0,
    }; 2];
    for (i, kind) in [QueueKind::Short, QueueKind::Long].into_iter().enumerate() {
        let rs: Vec<&SimResult> = results.iter().filter(|r| r.queue == kind).collect();
        if rs.is_empty() {
            continue;
        }
        let n = rs.len() as f64;
        let busy: f64 = rs.iter().map(|r| r.finish_secs - r.start_secs).sum();
        let slots = match kind {
            QueueKind::Short => config.short_slots,
            QueueKind::Long => {
                config.long_slots
                    + if config.enable_scaling {
                        config.scaling_slots
                    } else {
                        0
                    }
            }
        };
        out[i] = QueueStats {
            count: rs.len(),
            avg_wait: rs.iter().map(|r| r.wait_secs()).sum::<f64>() / n,
            max_wait: rs.iter().map(|r| r.wait_secs()).fold(0.0, f64::max),
            avg_latency: rs.iter().map(|r| r.latency_secs()).sum::<f64>() / n,
            busy_slot_secs: busy,
            utilization: if makespan > 0.0 && slots > 0 {
                busy / (slots as f64 * makespan)
            } else {
                0.0
            },
        };
    }
    out
}

/// Samples the number of waiting queries (arrived, not yet started) at
/// `n_points` evenly spaced times across the replay. Useful for plotting
/// backlog dynamics.
pub fn queue_depth_timeline(results: &[SimResult], n_points: usize) -> Vec<(f64, usize)> {
    if results.is_empty() || n_points == 0 {
        return Vec::new();
    }
    let t0 = results
        .iter()
        .map(|r| r.arrival_secs)
        .fold(f64::INFINITY, f64::min);
    let t1 = results.iter().map(|r| r.finish_secs).fold(0.0f64, f64::max);
    (0..n_points)
        .map(|i| {
            let t = t0 + (t1 - t0) * i as f64 / (n_points - 1).max(1) as f64;
            let depth = results
                .iter()
                .filter(|r| r.arrival_secs <= t && r.start_secs > t)
                .count();
            (t, depth)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{SimQuery, Simulation};

    fn run(queries: &[SimQuery], config: WlmConfig) -> Vec<SimResult> {
        Simulation::new(config).run(queries)
    }

    fn q(arrival: f64, exec: f64, pred: f64) -> SimQuery {
        SimQuery {
            arrival_secs: arrival,
            true_exec_secs: exec,
            predicted_secs: pred,
        }
    }

    #[test]
    fn stats_partition_by_queue() {
        let cfg = WlmConfig::default();
        let queries = vec![
            q(0.0, 1.0, 1.0),   // short
            q(0.0, 1.0, 1.0),   // short
            q(0.0, 60.0, 60.0), // long
        ];
        let results = run(&queries, cfg);
        let [short, long] = queue_stats(&results, &cfg);
        assert_eq!(short.count, 2);
        assert_eq!(long.count, 1);
        assert!(short.busy_slot_secs > 0.0);
        assert!((long.busy_slot_secs - 60.0).abs() < 1e-9);
        assert!(short.utilization >= 0.0 && short.utilization <= 1.0 + 1e-9);
        assert!(long.utilization <= 1.0 + 1e-9);
    }

    #[test]
    fn saturated_queue_high_utilization() {
        let cfg = WlmConfig {
            short_slots: 1,
            ..WlmConfig::default()
        };
        // Back-to-back 10s shorts keep the single slot busy continuously.
        let queries: Vec<SimQuery> = (0..10).map(|i| q(i as f64 * 0.1, 10.0, 1.0)).collect();
        let results = run(&queries, cfg);
        let [short, _] = queue_stats(&results, &cfg);
        assert!(short.utilization > 0.9, "{}", short.utilization);
        assert!(short.avg_wait > 10.0);
        assert!(short.max_wait >= short.avg_wait);
    }

    #[test]
    fn timeline_tracks_backlog() {
        let cfg = WlmConfig {
            short_slots: 1,
            ..WlmConfig::default()
        };
        let queries: Vec<SimQuery> = (0..5).map(|_| q(0.0, 10.0, 1.0)).collect();
        let results = run(&queries, cfg);
        let timeline = queue_depth_timeline(&results, 20);
        assert_eq!(timeline.len(), 20);
        let max_depth = timeline.iter().map(|p| p.1).max().unwrap();
        assert!(max_depth >= 3, "backlog should be visible: {max_depth}");
        // Backlog drains to zero by the end.
        assert_eq!(timeline.last().unwrap().1, 0);
    }

    #[test]
    fn empty_inputs() {
        let cfg = WlmConfig::default();
        let [s, l] = queue_stats(&[], &cfg);
        assert_eq!(s.count, 0);
        assert_eq!(l.count, 0);
        assert!(queue_depth_timeline(&[], 5).is_empty());
    }
}
