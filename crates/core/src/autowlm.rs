//! The AutoWLM predictor — the prior production baseline (paper §2.1).
//!
//! One squared-error gradient-boosting model per instance over the same
//! 33-dim flattened plan vector, retrained periodically on *every* executed
//! query (no cache dedup, no duration bucketing — exactly the behaviours
//! Stage's training pool fixes). Before any model exists it falls back to
//! [`DEFAULT_PREDICTION_SECS`], which is the cold-start weakness the paper
//! calls out.

use crate::pool::{PoolConfig, TrainingPool};
use crate::predictor::{
    ExecTimePredictor, Prediction, PredictionSource, SystemContext, DEFAULT_PREDICTION_SECS,
};
use crate::{from_log_space, to_log_space};
use serde::{Deserialize, Serialize};
use stage_gbdt::{Gbm, GbmParams};
use stage_plan::{plan_feature_vector, PhysicalPlan};

/// AutoWLM predictor configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AutoWlmConfig {
    /// GBM hyper-parameters (paper: same 200-estimator/depth-6 settings as
    /// one Stage local-model member, but squared-error loss; default trims
    /// estimators for replay speed, symmetrically with the local model).
    pub gbm: GbmParams,
    /// FIFO training-set capacity (every executed query is added).
    pub train_capacity: usize,
    /// Minimum training-set size before the first training.
    pub min_train_examples: usize,
    /// Retrain after this many new observations.
    pub retrain_interval: usize,
}

impl Default for AutoWlmConfig {
    fn default() -> Self {
        Self {
            gbm: GbmParams {
                n_estimators: 60,
                ..GbmParams::default()
            },
            train_capacity: 2_000,
            min_train_examples: 30,
            retrain_interval: 300,
        }
    }
}

/// The AutoWLM baseline predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutoWlmPredictor {
    config: AutoWlmConfig,
    pool: TrainingPool,
    model: Option<Gbm>,
    observations_since_train: usize,
    trainings: u64,
    instance_salt: u64,
}

impl AutoWlmPredictor {
    /// Creates an untrained predictor.
    pub fn new(config: AutoWlmConfig) -> Self {
        // AutoWLM keeps a flat FIFO: no bucketing, no dedup.
        let pool = TrainingPool::new(PoolConfig {
            bucket_capacity: [config.train_capacity, 0, 0],
            bucketing: false,
        });
        Self {
            config,
            pool,
            model: None,
            observations_since_train: 0,
            trainings: 0,
            instance_salt: 0,
        }
    }

    /// Sets the per-instance seed salt (see
    /// [`crate::LocalModel::set_instance_salt`]): retraining seeds derive
    /// only from per-instance state, keeping replays deterministic at any
    /// parallelism.
    pub fn set_instance_salt(&mut self, salt: u64) {
        self.instance_salt = salt;
    }

    /// Whether a trained model exists.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Number of trainings performed.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    fn maybe_retrain(&mut self) {
        let due = match self.model {
            None => self.pool.len() >= self.config.min_train_examples,
            Some(_) => self.observations_since_train >= self.config.retrain_interval,
        };
        if !due {
            return;
        }
        let Some(dataset) = self.pool.to_dataset() else {
            return;
        };
        // Same per-instance-state-only derivation as the Stage local model:
        // base seed ⊕ instance salt, stepped by the retrain counter.
        let params = GbmParams {
            seed: (self.config.gbm.seed ^ self.instance_salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
                .wrapping_add(self.trainings.wrapping_mul(0x9E37_79B9)),
            ..self.config.gbm
        };
        if let Some(m) = Gbm::fit(&dataset, &params) {
            self.model = Some(m);
            self.trainings += 1;
            self.observations_since_train = 0;
        }
    }
}

impl ExecTimePredictor for AutoWlmPredictor {
    fn predict(&mut self, plan: &PhysicalPlan, _sys: &SystemContext) -> Prediction {
        match &self.model {
            Some(m) => {
                let features = plan_feature_vector(plan);
                let log_pred = m.predict(features.as_slice());
                Prediction::point(from_log_space(log_pred), PredictionSource::Local)
            }
            None => Prediction::point(DEFAULT_PREDICTION_SECS, PredictionSource::Default),
        }
    }

    fn observe(&mut self, plan: &PhysicalPlan, _sys: &SystemContext, actual_secs: f64) {
        let features = plan_feature_vector(plan);
        self.pool.add(features.0, actual_secs);
        self.observations_since_train += 1;
        self.maybe_retrain();
    }

    fn name(&self) -> &'static str {
        "AutoWLM"
    }

    fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.pool.approx_size_bytes()
            + self.model.as_ref().map(Gbm::approx_size_bytes).unwrap_or(0)
    }
}

/// Targets are stored in log space; expose the transform used so tests can
/// assert symmetry with the local model.
pub fn autowlm_target(secs: f64) -> f64 {
    to_log_space(secs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    fn sys() -> SystemContext {
        SystemContext::empty(4)
    }

    fn quick() -> AutoWlmConfig {
        AutoWlmConfig {
            gbm: GbmParams {
                n_estimators: 30,
                ..GbmParams::default()
            },
            min_train_examples: 20,
            retrain_interval: 100,
            ..AutoWlmConfig::default()
        }
    }

    #[test]
    fn cold_start_uses_default() {
        let mut p = AutoWlmPredictor::new(quick());
        let pred = p.predict(&plan(1e5), &sys());
        assert_eq!(pred.source, PredictionSource::Default);
        assert_eq!(pred.exec_secs, DEFAULT_PREDICTION_SECS);
    }

    #[test]
    fn learns_from_observations() {
        let mut p = AutoWlmPredictor::new(quick());
        // Exec-time proportional to scan size.
        for i in 1..=120 {
            let rows = (i % 30 + 1) as f64 * 1e4;
            p.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(p.is_trained());
        let small = p.predict(&plan(1e4), &sys()).exec_secs;
        let large = p.predict(&plan(3e5), &sys()).exec_secs;
        assert!(
            large > 2.0 * small,
            "should order by size: small={small} large={large}"
        );
    }

    #[test]
    fn retrains_on_interval() {
        let mut p = AutoWlmPredictor::new(quick());
        for i in 0..220 {
            p.observe(&plan((i % 10 + 1) as f64 * 1e4), &sys(), 1.0);
        }
        // First training at 20 observations, then at 120 and 220.
        assert!(p.trainings() >= 2, "{} trainings", p.trainings());
    }

    #[test]
    fn no_dedup_every_query_counts() {
        let mut p = AutoWlmPredictor::new(quick());
        let q = plan(1e5);
        for _ in 0..5 {
            p.observe(&q, &sys(), 1.0);
        }
        assert_eq!(p.pool.len(), 5, "AutoWLM keeps repeats");
    }

    #[test]
    fn predictions_nonnegative() {
        let mut p = AutoWlmPredictor::new(quick());
        for _ in 0..50 {
            p.observe(&plan(1e4), &sys(), 0.001);
        }
        assert!(p.predict(&plan(1e4), &sys()).exec_secs >= 0.0);
    }

    #[test]
    fn size_accounting() {
        let mut p = AutoWlmPredictor::new(quick());
        let before = p.approx_size_bytes();
        for i in 0..60 {
            p.observe(&plan((i + 1) as f64 * 1e4), &sys(), 1.0);
        }
        assert!(p.approx_size_bytes() > before);
        assert_eq!(p.name(), "AutoWLM");
    }
}
