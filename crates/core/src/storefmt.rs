//! Store-backed snapshot persistence (the artefact-store sibling of
//! [`crate::persist`]).
//!
//! Where `persist` frames a JSON envelope, this module lays a
//! [`crate::stage::StageSnapshot`] out in the `stage-store v1` sectioned
//! binary format (`stage-store` crate): one section per predictor
//! component, each independently CRC'd, 8-aligned, little-endian, floats
//! as `to_bits` images. A shard restores by mapping the file and decoding
//! in place — no JSON pass — and answers **bit-identically** to the serde
//! path (pinned by tests and `bench_store --smoke`).
//!
//! Checkpoints come in two flavours:
//! - [`save_stage_store`] — full rewrite through the crash-safe
//!   temp-file + rename path, with the same [`PersistFaults`] injection
//!   points as the JSON artefacts;
//! - [`save_stage_store_dirty`] — section-granular in-place update via
//!   [`stage_store::StoreUpdater`]: unchanged sections are not rewritten,
//!   a byte-identical snapshot writes nothing at all
//!   ([`StoreCheckpoint::Clean`]), and any misfit falls back to a full
//!   rewrite.
//!
//! Restore failures follow `persist`'s quarantine discipline: any damage
//! (bad magic, version skew, truncation, checksum mismatch, malformed
//! section) renames the file to `*.quarantine` and returns the same typed
//! [`RestoreError`] the JSON path would, so callers and the chaos ledger
//! treat both formats uniformly. A missing file stays a benign
//! [`RestoreError::Io`] cold start.
//!
//! The module also persists the fleet-shared global model as a one-section
//! store file stamped with a caller-chosen generation
//! ([`save_global_store`]); servers poll [`store_generation`] (a 64-byte
//! header read) to detect hot-swapped artefacts without re-parsing.

use crate::cache::ExecTimeCache;
use crate::drift::DriftSentinel;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::persist::{self, PersistFaults, RestoreError};
use crate::pool::TrainingPool;
use crate::stage::{DegradedStats, RoutingConfig, RoutingStats, StageConfig, StageSnapshot};
use stage_store::{
    build_file, MappedStore, SectionReader, SectionWriter, StoreError, StoreUpdater, StoreView,
    UpdateOutcome, STORE_VERSION,
};
use std::io::{self, Write};
use std::path::Path;

/// Section id: routing policy + feature flags (the `StageConfig` fields not
/// owned by a component section).
pub const SECTION_CONFIG: u32 = 1;
/// Section id: exec-time cache entries (SoA, sorted by key).
pub const SECTION_CACHE: u32 = 2;
/// Section id: training-pool buckets.
pub const SECTION_POOL: u32 = 3;
/// Section id: local model (ensemble members as flat tree arrays).
pub const SECTION_LOCAL: u32 = 4;
/// Section id: routing + degraded counters.
pub const SECTION_STATS: u32 = 5;
/// Section id: drift sentinel + conformal calibration state. Absent in
/// files written before the sentinel existed — restore then cold-starts
/// the calibration (era parity with the serde path's missing-field
/// default).
pub const SECTION_CALIBRATION: u32 = 6;
/// Section id: the fleet-shared global model (framed JSON envelope bytes;
/// lives in its own single-section file, not in snapshot files).
pub const SECTION_GLOBAL: u32 = 16;

/// What a section-granular checkpoint actually wrote.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreCheckpoint {
    /// Every section byte-matched the existing file; nothing was written.
    Clean,
    /// Only the changed sections were rewritten in place.
    Sections {
        /// How many of the file's sections were dirty.
        dirty: usize,
    },
    /// The whole file was (re)written: first checkpoint, a section outgrew
    /// its reserved capacity, or the existing file was unusable.
    Full,
}

fn store_to_restore(e: StoreError) -> RestoreError {
    let clamp = |v: u64| usize::try_from(v).unwrap_or(usize::MAX);
    match e {
        StoreError::Io(e) => RestoreError::Io(e),
        StoreError::BadMagic => RestoreError::MissingHeader,
        StoreError::UnsupportedVersion { found } => RestoreError::UnsupportedVersion {
            found,
            supported: STORE_VERSION,
        },
        StoreError::Truncated { expected, actual } => RestoreError::Truncated {
            expected: clamp(expected),
            actual: clamp(actual),
        },
        StoreError::ChecksumMismatch {
            expected, actual, ..
        } => RestoreError::ChecksumMismatch { expected, actual },
        StoreError::Malformed { detail } => RestoreError::Malformed { detail },
    }
}

fn missing_section(id: u32) -> StoreError {
    StoreError::Malformed {
        detail: format!("store file has no section {id}"),
    }
}

/// Encodes a snapshot as the store's section list, in table order. The
/// encoding is deterministic (cache entries sorted by key), so an
/// unchanged snapshot produces byte-identical sections and
/// [`save_stage_store_dirty`] recognises it as [`StoreCheckpoint::Clean`].
pub fn snapshot_sections(snap: &StageSnapshot) -> Vec<(u32, Vec<u8>)> {
    let mut config = SectionWriter::new();
    config.put_f64(snap.config.routing.short_circuit_secs);
    config.put_f64(snap.config.routing.confident_log_std);
    config.put_bool(snap.config.routing.dedup_via_cache);
    config.put_bool(snap.config.env_features);

    let mut cache = SectionWriter::new();
    snap.cache.store_encode(&mut cache);
    let mut pool = SectionWriter::new();
    snap.pool.store_encode(&mut pool);
    let mut local = SectionWriter::new();
    snap.local.store_encode(&mut local);

    let mut stats = SectionWriter::new();
    stats.put_u64(snap.stats.cache);
    stats.put_u64(snap.stats.local);
    stats.put_u64(snap.stats.global);
    stats.put_u64(snap.stats.default);
    stats.put_u64(snap.degraded.global_failover);
    stats.put_u64(snap.degraded.local_failover);
    stats.put_u64(snap.degraded.retrains_poisoned);
    stats.put_u64(snap.degraded.retrains_slowed);

    let mut calibration = SectionWriter::new();
    snap.calibration.store_encode(&mut calibration);

    vec![
        (SECTION_CONFIG, config.finish()),
        (SECTION_CACHE, cache.finish()),
        (SECTION_POOL, pool.finish()),
        (SECTION_LOCAL, local.finish()),
        (SECTION_STATS, stats.finish()),
        (SECTION_CALIBRATION, calibration.finish()),
    ]
}

fn decode_snapshot<'a>(
    section: impl Fn(u32) -> Option<&'a [u8]>,
) -> Result<StageSnapshot, StoreError> {
    let need = |id: u32| section(id).ok_or_else(|| missing_section(id));

    let mut r = SectionReader::new(need(SECTION_CONFIG)?);
    let routing = RoutingConfig {
        short_circuit_secs: r.f64()?,
        confident_log_std: r.f64()?,
        dedup_via_cache: r.bool()?,
    };
    let env_features = r.bool()?;
    r.expect_end()?;

    let mut r = SectionReader::new(need(SECTION_CACHE)?);
    let cache = ExecTimeCache::store_decode(&mut r)?;
    r.expect_end()?;

    let mut r = SectionReader::new(need(SECTION_POOL)?);
    let pool = TrainingPool::store_decode(&mut r)?;
    r.expect_end()?;

    let mut r = SectionReader::new(need(SECTION_LOCAL)?);
    let local = LocalModel::store_decode(&mut r)?;
    r.expect_end()?;

    let mut r = SectionReader::new(need(SECTION_STATS)?);
    let stats = RoutingStats {
        cache: r.u64()?,
        local: r.u64()?,
        global: r.u64()?,
        default: r.u64()?,
    };
    let degraded = DegradedStats {
        global_failover: r.u64()?,
        local_failover: r.u64()?,
        retrains_poisoned: r.u64()?,
        retrains_slowed: r.u64()?,
    };
    r.expect_end()?;

    // CALIBRATION is optional: pre-drift files simply lack the section and
    // restore a cold sentinel. When present, any damage is a hard decode
    // error (quarantine), not a silent cold start.
    let calibration = match section(SECTION_CALIBRATION) {
        Some(bytes) => {
            let mut r = SectionReader::new(bytes);
            let c = DriftSentinel::store_decode(&mut r)?;
            r.expect_end()?;
            c
        }
        None => DriftSentinel::default(),
    };

    let config = StageConfig {
        cache: cache.store_config(),
        pool: pool.store_config(),
        local: local.store_config(),
        routing,
        env_features,
    };
    Ok(StageSnapshot {
        config,
        cache,
        pool,
        local,
        stats,
        degraded,
        calibration,
    })
}

/// The next generation stamp for a rewrite of `path`: one past the current
/// file's, or zero for a fresh file.
fn next_generation(path: &Path) -> u64 {
    stage_store::read_generation(path)
        .map(|g| g.wrapping_add(1))
        .unwrap_or(0)
}

/// Writes a snapshot to `path` in store format, crash-safely (temp file +
/// fsync + atomic rename, exactly like the JSON artefacts). The optional
/// fault hook sees the fully built file image, so injected truncation or
/// bit damage lands on disk with mismatching section CRCs — which restore
/// must catch.
pub fn save_stage_store(
    snap: &StageSnapshot,
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> io::Result<()> {
    let mut bytes = build_file(&snapshot_sections(snap), next_generation(path));
    if let Some(f) = faults {
        f.before_write(path, &mut bytes)?;
    }
    persist::atomic_write(path, |out| out.write_all(&bytes), faults)
}

/// Section-granular checkpoint: rewrites only the sections whose bytes
/// changed since the file was written (in place, two-phase, torn updates
/// always detectable), writes nothing when the snapshot is byte-identical,
/// and falls back to a full [`save_stage_store`]-style rewrite when the
/// file is missing, damaged, or a section outgrew its reserved capacity.
pub fn save_stage_store_dirty(snap: &StageSnapshot, path: &Path) -> io::Result<StoreCheckpoint> {
    let sections = snapshot_sections(snap);
    if path.exists() {
        if let Ok(mut updater) = StoreUpdater::open(path) {
            match updater.try_update(&sections) {
                Ok(UpdateOutcome::Clean) => return Ok(StoreCheckpoint::Clean),
                Ok(UpdateOutcome::Updated { dirty }) => {
                    return Ok(StoreCheckpoint::Sections { dirty })
                }
                // A misfit or an unusable file: fall through to the full
                // rewrite below.
                Ok(UpdateOutcome::NeedsRewrite) | Err(_) => {}
            }
        }
    }
    let bytes = build_file(&sections, next_generation(path));
    persist::atomic_write(path, |out| out.write_all(&bytes), None)?;
    Ok(StoreCheckpoint::Full)
}

fn load_snapshot_inner(
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> Result<StageSnapshot, RestoreError> {
    match faults {
        // The chaos path reads into a heap buffer so the injected read-side
        // damage mutates a copy, then decodes from the buffer.
        Some(f) => {
            let mut bytes = std::fs::read(path)?;
            f.after_read(path, &mut bytes);
            let view = StoreView::parse(&bytes).map_err(store_to_restore)?;
            decode_snapshot(|id| view.section(id)).map_err(store_to_restore)
        }
        // The production path maps the file and decodes in place.
        None => {
            let store = MappedStore::open(path).map_err(store_to_restore)?;
            decode_snapshot(|id| store.section(id)).map_err(store_to_restore)
        }
    }
}

/// Restores a snapshot from a store file. Missing files are a benign
/// [`RestoreError::Io`] cold start; any damage quarantines the file
/// (renamed to `*.quarantine`) before the typed error returns — identical
/// discipline to [`crate::persist::load_stage_file`].
pub fn load_stage_store(
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> Result<StageSnapshot, RestoreError> {
    let result = load_snapshot_inner(path, faults);
    if matches!(&result, Err(e) if !matches!(e, RestoreError::Io(_))) {
        let _ = persist::quarantine(path);
    }
    result
}

/// Writes the fleet-shared global model as a one-section store file: the
/// framed JSON envelope bytes under [`SECTION_GLOBAL`], header stamped with
/// the caller's `generation` (the registry-entry number servers poll to
/// detect a hot-swapped artefact).
pub fn save_global_store(
    model: &GlobalModel,
    path: &Path,
    generation: u64,
    faults: Option<&dyn PersistFaults>,
) -> io::Result<()> {
    let mut payload = Vec::new();
    persist::save_global(model, &mut payload)?;
    let mut w = SectionWriter::new();
    w.put_bytes(&payload);
    let mut bytes = build_file(&[(SECTION_GLOBAL, w.finish())], generation);
    if let Some(f) = faults {
        f.before_write(path, &mut bytes)?;
    }
    persist::atomic_write(path, |out| out.write_all(&bytes), faults)
}

fn load_global_inner(
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> Result<(GlobalModel, u64), RestoreError> {
    let decode = |view_section: Option<&[u8]>, generation: u64| {
        let bytes =
            view_section.ok_or_else(|| store_to_restore(missing_section(SECTION_GLOBAL)))?;
        let mut r = SectionReader::new(bytes);
        let payload = r.bytes().map_err(store_to_restore)?;
        r.expect_end().map_err(store_to_restore)?;
        let model = persist::load_global(payload).map_err(|e| RestoreError::Malformed {
            detail: e.to_string(),
        })?;
        Ok((model, generation))
    };
    match faults {
        Some(f) => {
            let mut bytes = std::fs::read(path)?;
            f.after_read(path, &mut bytes);
            let view = StoreView::parse(&bytes).map_err(store_to_restore)?;
            decode(view.section(SECTION_GLOBAL), view.generation())
        }
        None => {
            let store = MappedStore::open(path).map_err(store_to_restore)?;
            decode(store.section(SECTION_GLOBAL), store.generation())
        }
    }
}

/// Loads a global model (and its generation stamp) from a store file
/// written by [`save_global_store`]. Same quarantine semantics as
/// [`load_stage_store`].
pub fn load_global_store(
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> Result<(GlobalModel, u64), RestoreError> {
    let result = load_global_inner(path, faults);
    if matches!(&result, Err(e) if !matches!(e, RestoreError::Io(_))) {
        let _ = persist::quarantine(path);
    }
    result
}

/// The generation stamp of a store file, read from its 64-byte header
/// without touching the payload — the cheap poll servers use to notice a
/// hot-swapped global model.
pub fn store_generation(path: &Path) -> Result<u64, RestoreError> {
    stage_store::read_generation(path).map_err(store_to_restore)
}
