//! The local model's training pool (paper §4.3, "Local model training
//! optimization").
//!
//! Naively keeping every executed query would (1) grow unboundedly,
//! (2) fill with repeats the cache already handles, and (3) drown long
//! queries under the short-query flood. The pool therefore:
//!
//! * **bounds** total size by capping each duration bucket and evicting the
//!   oldest entries first;
//! * **deduplicates** — the caller (see `StagePredictor::observe`) only adds
//!   queries that *missed* the exec-time cache;
//! * **stratifies by duration** — separate caps for the 0–10 s, 10–60 s,
//!   and 60 s+ buckets keep long queries represented.
//!
//! Both dedup and bucketing are individually switchable for the paper's
//! ablations.

use serde::{Deserialize, Serialize};
use stage_gbdt::Dataset;
use std::collections::VecDeque;

/// Bucket edges in seconds (paper's example: 0–10 s, 10–60 s, 60 s+).
pub const BUCKET_EDGES_SECS: [f64; 2] = [10.0, 60.0];

/// Number of duration buckets.
pub const N_BUCKETS: usize = BUCKET_EDGES_SECS.len() + 1;

/// Pool configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Per-bucket capacity when bucketing is enabled.
    pub bucket_capacity: [usize; N_BUCKETS],
    /// When `false`, all entries share one FIFO of total capacity
    /// `bucket_capacity.sum()` (the "no bucketing" ablation).
    pub bucketing: bool,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            bucket_capacity: [1_200, 500, 300],
            bucketing: true,
        }
    }
}

/// One training example: the 33-dim feature vector and the target in
/// `ln(1+secs)` space.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Example {
    features: Vec<f64>,
    log_target: f64,
}

/// The bounded, stratified training pool.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingPool {
    config: PoolConfig,
    buckets: Vec<VecDeque<Example>>,
    total_added: u64,
}

impl TrainingPool {
    /// Creates an empty pool.
    pub fn new(config: PoolConfig) -> Self {
        Self {
            config,
            buckets: (0..N_BUCKETS).map(|_| VecDeque::new()).collect(),
            total_added: 0,
        }
    }

    /// Bucket index of an exec-time.
    fn bucket_of(secs: f64) -> usize {
        BUCKET_EDGES_SECS
            .iter()
            .position(|&edge| secs < edge)
            .unwrap_or(N_BUCKETS - 1)
    }

    /// Adds one executed query. `actual_secs` selects the duration bucket;
    /// the stored target is `ln(1+actual_secs)`.
    pub fn add(&mut self, features: Vec<f64>, actual_secs: f64) {
        self.total_added += 1;
        let example = Example {
            features,
            log_target: actual_secs.max(0.0).ln_1p(),
        };
        if self.config.bucketing {
            let b = Self::bucket_of(actual_secs);
            let cap = self.config.bucket_capacity[b].max(1);
            let bucket = &mut self.buckets[b];
            bucket.push_back(example);
            while bucket.len() > cap {
                bucket.pop_front();
            }
        } else {
            let cap: usize = self.config.bucket_capacity.iter().sum::<usize>().max(1);
            let bucket = &mut self.buckets[0];
            bucket.push_back(example);
            while bucket.len() > cap {
                bucket.pop_front();
            }
        }
        self.debug_check_caps();
    }

    /// Debug-build invariant: no bucket ever exceeds its cap (per-bucket
    /// caps when bucketing, the summed cap as one FIFO otherwise).
    fn debug_check_caps(&self) {
        if cfg!(debug_assertions) {
            if self.config.bucketing {
                for (b, bucket) in self.buckets.iter().enumerate() {
                    debug_assert!(
                        bucket.len() <= self.config.bucket_capacity[b].max(1),
                        "pool invariant violated: bucket {b} holds {} > cap {}",
                        bucket.len(),
                        self.config.bucket_capacity[b].max(1)
                    );
                }
            } else {
                let cap: usize = self.config.bucket_capacity.iter().sum::<usize>().max(1);
                debug_assert!(
                    self.len() <= cap,
                    "pool invariant violated: {} entries > summed cap {cap}",
                    self.len()
                );
            }
        }
    }

    /// Number of examples currently held.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(VecDeque::len).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Examples per bucket (all in slot 0 when bucketing is off).
    pub fn bucket_lens(&self) -> [usize; N_BUCKETS] {
        let mut out = [0; N_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.len();
        }
        out
    }

    /// Lifetime number of `add` calls (including evicted examples).
    pub fn total_added(&self) -> u64 {
        self.total_added
    }

    /// Materializes the pool as a training dataset (targets in log space).
    /// Returns `None` when empty.
    pub fn to_dataset(&self) -> Option<Dataset> {
        let first = self.buckets.iter().flatten().next()?;
        let mut ds = Dataset::new(first.features.len());
        for ex in self.buckets.iter().flatten() {
            ds.push(&ex.features, ex.log_target);
        }
        Some(ds)
    }

    /// Encodes the pool into an artefact-store section: config, lifetime
    /// counter, then each bucket's FIFO in order (front to back), so the
    /// restored pool evicts in exactly the same sequence.
    pub(crate) fn store_encode(&self, w: &mut stage_store::SectionWriter) {
        for cap in self.config.bucket_capacity {
            w.put_u64(cap as u64);
        }
        w.put_bool(self.config.bucketing);
        w.put_u64(self.total_added);
        w.put_u64(self.buckets.len() as u64);
        for bucket in &self.buckets {
            w.put_u64(bucket.len() as u64);
            for ex in bucket {
                w.put_f64_slice(&ex.features);
                w.put_f64(ex.log_target);
            }
        }
    }

    /// Decodes a pool from an artefact-store section; structural problems
    /// (wrong bucket count, over-cap buckets) are typed errors.
    pub(crate) fn store_decode(
        r: &mut stage_store::SectionReader<'_>,
    ) -> Result<Self, stage_store::StoreError> {
        let malformed = |d: String| stage_store::StoreError::Malformed { detail: d };
        let mut bucket_capacity = [0usize; N_BUCKETS];
        for cap in &mut bucket_capacity {
            *cap = usize::try_from(r.u64()?)
                .map_err(|_| malformed("pool bucket cap overflows".into()))?;
        }
        let bucketing = r.bool()?;
        let total_added = r.u64()?;
        let n_buckets = r.u64()?;
        if n_buckets != N_BUCKETS as u64 {
            return Err(malformed(format!(
                "pool has {n_buckets} buckets, expected {N_BUCKETS}"
            )));
        }
        let config = PoolConfig {
            bucket_capacity,
            bucketing,
        };
        let summed_cap: usize = bucket_capacity.iter().sum::<usize>().max(1);
        let mut buckets = Vec::with_capacity(N_BUCKETS);
        for (b, &bucket_cap) in bucket_capacity.iter().enumerate() {
            let len = usize::try_from(r.u64()?)
                .map_err(|_| malformed("pool bucket length overflows".into()))?;
            let cap = if bucketing {
                bucket_cap.max(1)
            } else {
                summed_cap
            };
            if len > cap {
                return Err(malformed(format!(
                    "pool bucket {b} holds {len} > cap {cap}"
                )));
            }
            // Each example is at least 16 encoded bytes (feature count +
            // target); a hostile length over that bound must not allocate.
            if len.saturating_mul(16) > r.remaining() {
                return Err(malformed(format!(
                    "pool bucket {b} length {len} overruns section"
                )));
            }
            let mut bucket = VecDeque::with_capacity(len);
            for _ in 0..len {
                let features = r.f64_vec()?;
                let log_target = r.f64()?;
                bucket.push_back(Example {
                    features,
                    log_target,
                });
            }
            buckets.push(bucket);
        }
        let pool = Self {
            config,
            buckets,
            total_added,
        };
        pool.debug_check_caps();
        Ok(pool)
    }

    /// Approximate resident size in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .buckets
                .iter()
                .flatten()
                .map(|e| e.features.len() * 8 + 16)
                .sum::<usize>()
    }

    /// The configuration this pool was built with (store restore needs it
    /// to reassemble the enclosing [`crate::stage::StageConfig`]).
    pub(crate) fn store_config(&self) -> PoolConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feat(x: f64) -> Vec<f64> {
        vec![x, x * 2.0]
    }

    #[test]
    fn bucket_assignment() {
        assert_eq!(TrainingPool::bucket_of(0.5), 0);
        assert_eq!(TrainingPool::bucket_of(9.99), 0);
        assert_eq!(TrainingPool::bucket_of(10.0), 1);
        assert_eq!(TrainingPool::bucket_of(59.9), 1);
        assert_eq!(TrainingPool::bucket_of(60.0), 2);
        assert_eq!(TrainingPool::bucket_of(1e6), 2);
    }

    #[test]
    fn per_bucket_caps_enforced() {
        let cfg = PoolConfig {
            bucket_capacity: [3, 2, 1],
            bucketing: true,
        };
        let mut p = TrainingPool::new(cfg);
        for i in 0..10 {
            p.add(feat(i as f64), 1.0); // bucket 0
            p.add(feat(i as f64), 30.0); // bucket 1
            p.add(feat(i as f64), 300.0); // bucket 2
        }
        assert_eq!(p.bucket_lens(), [3, 2, 1]);
        assert_eq!(p.len(), 6);
        assert_eq!(p.total_added(), 30);
    }

    #[test]
    fn long_queries_survive_short_flood() {
        // The whole point of bucketing: one long query among thousands of
        // short ones must stay in the pool.
        let mut p = TrainingPool::new(PoolConfig::default());
        p.add(feat(1.0), 500.0);
        for i in 0..5_000 {
            p.add(feat(i as f64), 0.05);
        }
        assert_eq!(p.bucket_lens()[2], 1, "long query was evicted");
    }

    #[test]
    fn no_bucketing_ablation_floods_out_long_queries() {
        let cfg = PoolConfig {
            bucket_capacity: [100, 0, 0],
            bucketing: false,
        };
        let mut p = TrainingPool::new(cfg);
        p.add(feat(1.0), 500.0);
        for i in 0..200 {
            p.add(feat(i as f64), 0.05);
        }
        // FIFO of 100: the long query is gone.
        let ds = p.to_dataset().unwrap();
        let long_target = 500.0f64.ln_1p();
        assert!(ds.targets().iter().all(|&t| (t - long_target).abs() > 1e-9));
        assert_eq!(p.len(), 100);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let cfg = PoolConfig {
            bucket_capacity: [2, 1, 1],
            bucketing: true,
        };
        let mut p = TrainingPool::new(cfg);
        p.add(feat(1.0), 1.0);
        p.add(feat(2.0), 1.0);
        p.add(feat(3.0), 1.0); // evicts feat(1.0)
        let ds = p.to_dataset().unwrap();
        assert_eq!(ds.n_rows(), 2);
        assert_eq!(ds.row(0)[0], 2.0);
        assert_eq!(ds.row(1)[0], 3.0);
    }

    #[test]
    fn dataset_targets_in_log_space() {
        let mut p = TrainingPool::new(PoolConfig::default());
        p.add(feat(1.0), 9.0);
        let ds = p.to_dataset().unwrap();
        assert!((ds.target(0) - 9.0f64.ln_1p()).abs() < 1e-12);
    }

    #[test]
    fn empty_pool_has_no_dataset() {
        let p = TrainingPool::new(PoolConfig::default());
        assert!(p.to_dataset().is_none());
        assert!(p.is_empty());
        assert!(p.approx_size_bytes() > 0);
    }

    #[test]
    fn negative_times_clamped() {
        let mut p = TrainingPool::new(PoolConfig::default());
        p.add(feat(1.0), -5.0);
        let ds = p.to_dataset().unwrap();
        assert_eq!(ds.target(0), 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            // Debug-mode hammer for `debug_check_caps`: arbitrary duration
            // mixes (spanning all three buckets) against tiny caps, in both
            // bucketing modes. Every `add` re-checks the invariant
            // internally; the external assertions pin the same bounds.
            #[test]
            fn prop_bucket_caps_hold_under_arbitrary_mixes(
                secs in proptest::collection::vec(0.0f64..300.0, 1..250),
                bucketing in proptest::bool::ANY,
            ) {
                let cfg = PoolConfig {
                    bucket_capacity: [5, 3, 2],
                    bucketing,
                };
                let mut p = TrainingPool::new(cfg);
                for (i, &s) in secs.iter().enumerate() {
                    p.add(vec![i as f64, s], s);
                    if bucketing {
                        let lens = p.bucket_lens();
                        prop_assert!(lens[0] <= 5 && lens[1] <= 3 && lens[2] <= 2);
                    } else {
                        prop_assert!(p.len() <= 10);
                    }
                }
                prop_assert_eq!(p.total_added(), secs.len() as u64);
            }

            // FIFO-within-bucket: after overflow, the survivors are exactly
            // the most recent `cap` additions to that bucket.
            #[test]
            fn prop_eviction_keeps_newest_per_bucket(
                n in 1usize..60,
            ) {
                let cfg = PoolConfig {
                    bucket_capacity: [4, 1, 1],
                    bucketing: true,
                };
                let mut p = TrainingPool::new(cfg);
                for i in 0..n {
                    p.add(vec![i as f64], 1.0); // all land in bucket 0
                }
                let ds = p.to_dataset().expect("non-empty pool");
                let survivors: Vec<f64> = (0..ds.n_rows()).map(|r| ds.row(r)[0]).collect();
                let expected: Vec<f64> =
                    (n.saturating_sub(4)..n).map(|i| i as f64).collect();
                prop_assert_eq!(survivors, expected);
            }
        }
    }
}
