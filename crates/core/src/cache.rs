//! The exec-time cache (paper §4.2).
//!
//! Keys are the FNV-1a hash of the 33-dim plan feature vector
//! ("Optimization 1" — no element-wise vector comparison); values are a
//! Welford running mean/variance plus the most recent observation
//! ("Optimization 2" — four scalars instead of the full history). The
//! prediction blends robustness and freshness:
//!
//! ```text
//! predict = α · mean + (1 − α) · t_last        (α = 0.8)
//! ```
//!
//! Eviction removes the least-recently-*updated* entry once capacity is
//! exceeded (the paper keeps 2 000 unique queries).

use serde::{Deserialize, Serialize};
use stage_metrics::Welford;
use stage_plan::{plan_feature_vector, PhysicalPlan};
use std::collections::HashMap;

/// How a cached query's history becomes a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CacheMode {
    /// The paper's production heuristic: `α·mean + (1−α)·last`.
    AlphaBlend,
    /// Holt's linear exponential smoothing — the "time series prediction"
    /// direction the paper names as future work (§4.2): tracks a level and
    /// a trend per entry and predicts `level + trend`, following drifting
    /// exec-times (e.g. a growing table) instead of lagging behind them.
    Holt {
        /// Level smoothing factor in `(0, 1]`.
        level_alpha: f64,
        /// Trend smoothing factor in `(0, 1]`.
        trend_beta: f64,
    },
}

/// Cache tuning knobs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Maximum number of unique queries retained (paper: 2 000).
    pub capacity: usize,
    /// Mean-vs-last blending factor α (paper: 0.8).
    pub alpha: f64,
    /// Prediction mode (default: the paper's α-blend).
    pub mode: CacheMode,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 2_000,
            alpha: 0.8,
            mode: CacheMode::AlphaBlend,
        }
    }
}

/// One cached query: running stats + most recent exec-time + update seq,
/// plus the Holt level/trend state (unused in α-blend mode).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Entry {
    stats: Welford,
    last_secs: f64,
    last_update: u64,
    holt_level: f64,
    holt_trend: f64,
}

/// The exec-time cache. See the module docs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecTimeCache {
    config: CacheConfig,
    entries: HashMap<u64, Entry>,
    update_seq: u64,
    hits: u64,
    misses: u64,
}

impl ExecTimeCache {
    /// Creates a cache.
    ///
    /// # Panics
    /// Panics if `capacity == 0` or `alpha ∉ [0, 1]`.
    pub fn new(config: CacheConfig) -> Self {
        // lint:allow(no-panic): startup-time config validation — callers pass static configs; failing fast here never reaches the request path
        assert!(config.capacity > 0, "cache capacity must be positive");
        // lint:allow(no-panic): startup-time config validation, as above
        assert!(
            (0.0..=1.0).contains(&config.alpha),
            "alpha must be in [0, 1]"
        );
        if let CacheMode::Holt {
            level_alpha,
            trend_beta,
        } = config.mode
        {
            // lint:allow(no-panic): startup-time config validation, as above
            assert!(
                (0.0..=1.0).contains(&level_alpha) && (0.0..=1.0).contains(&trend_beta),
                "Holt smoothing factors must be in [0, 1]"
            );
        }
        Self {
            config,
            entries: HashMap::with_capacity(config.capacity.saturating_add(1).min(4_096)),
            update_seq: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Hash key of a plan (the stable hash of its 33-dim vector). Extracts
    /// the feature vector just to hash it — callers that already hold the
    /// features (the batched predict path) should use
    /// [`ExecTimeCache::key_of_features`] instead and hash once.
    pub fn key_of(plan: &PhysicalPlan) -> u64 {
        plan_feature_vector(plan).stable_hash()
    }

    /// Hash key of an already-extracted plan feature vector. Identical to
    /// [`ExecTimeCache::key_of`] on the same plan's features; the split lets
    /// the serve path pay feature extraction + hashing exactly once per plan
    /// per request.
    pub fn key_of_features(features: &[f64]) -> u64 {
        stage_plan::stable_hash_slice(features)
    }

    /// Looks up a precomputed key; returns the blended prediction on a hit.
    /// Updates hit/miss counters. This is the lookup primitive — every other
    /// lookup form delegates here, so counters stay consistent across the
    /// scalar and batch paths.
    pub fn get_by_key(&mut self, key: u64) -> Option<f64> {
        match self.entries.get(&key) {
            Some(e) => {
                self.hits += 1;
                let pred = match self.config.mode {
                    CacheMode::AlphaBlend => {
                        self.config.alpha * e.stats.mean() + (1.0 - self.config.alpha) * e.last_secs
                    }
                    CacheMode::Holt { .. } => (e.holt_level + e.holt_trend).max(0.0),
                };
                Some(pred)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Looks up a plan; returns the blended prediction on a hit. Updates
    /// hit/miss counters.
    pub fn lookup(&mut self, key: u64) -> Option<f64> {
        self.get_by_key(key)
    }

    /// Looks up many precomputed keys in one pass, index-aligned with
    /// `keys`. Counter effects are exactly those of calling
    /// [`ExecTimeCache::get_by_key`] per key, in order.
    pub fn lookup_many(&mut self, keys: &[u64]) -> Vec<Option<f64>> {
        keys.iter().map(|&k| self.get_by_key(k)).collect()
    }

    /// Whether a key is cached (no counter side effects).
    pub fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Observed variance of a cached query's exec-times, if present.
    pub fn observed_variance(&self, key: u64) -> Option<f64> {
        self.entries.get(&key).map(|e| e.stats.variance())
    }

    /// Records an observed exec-time, inserting or updating the entry and
    /// evicting the least-recently-updated entry when over capacity.
    pub fn record(&mut self, key: u64, actual_secs: f64) {
        self.update_seq += 1;
        let seq = self.update_seq;
        let mode = self.config.mode;
        match self.entries.get_mut(&key) {
            Some(e) => {
                e.stats.push(actual_secs);
                e.last_secs = actual_secs;
                e.last_update = seq;
                if let CacheMode::Holt {
                    level_alpha,
                    trend_beta,
                } = mode
                {
                    let prev_level = e.holt_level;
                    e.holt_level = level_alpha * actual_secs
                        + (1.0 - level_alpha) * (e.holt_level + e.holt_trend);
                    e.holt_trend = trend_beta * (e.holt_level - prev_level)
                        + (1.0 - trend_beta) * e.holt_trend;
                }
            }
            None => {
                self.entries.insert(
                    key,
                    Entry {
                        stats: Welford::with_first(actual_secs),
                        last_secs: actual_secs,
                        last_update: seq,
                        holt_level: actual_secs,
                        holt_trend: 0.0,
                    },
                );
                if self.entries.len() > self.config.capacity {
                    self.evict_oldest();
                }
            }
        }
        debug_assert!(
            self.entries.len() <= self.config.capacity,
            "cache invariant violated after record: {} entries > capacity {}",
            self.entries.len(),
            self.config.capacity
        );
    }

    /// Number of cached unique queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit rate (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Approximate resident size in bytes: each entry is a key (8) plus
    /// four stat scalars + seq (paper's "4 values per hash table entry"
    /// plus bookkeeping).
    pub fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.entries.len() * (8 + std::mem::size_of::<Entry>())
    }

    /// The configuration this cache was built with (store restore needs it
    /// to reassemble the enclosing [`crate::stage::StageConfig`]).
    pub(crate) fn store_config(&self) -> CacheConfig {
        self.config
    }

    /// Encodes the cache into an artefact-store section: config scalars,
    /// lifetime counters, then the entries as structure-of-arrays sorted by
    /// key (the sort makes encoding deterministic across `HashMap`
    /// iteration orders, so an unchanged cache produces byte-identical
    /// sections and dirty-section checkpoints can skip it).
    pub(crate) fn store_encode(&self, w: &mut stage_store::SectionWriter) {
        w.put_u64(self.config.capacity as u64);
        w.put_f64(self.config.alpha);
        match self.config.mode {
            CacheMode::AlphaBlend => {
                w.put_u32(0);
                w.put_f64(0.0);
                w.put_f64(0.0);
            }
            CacheMode::Holt {
                level_alpha,
                trend_beta,
            } => {
                w.put_u32(1);
                w.put_f64(level_alpha);
                w.put_f64(trend_beta);
            }
        }
        w.put_u64(self.update_seq);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        let mut keys: Vec<u64> = self.entries.keys().copied().collect();
        keys.sort_unstable();
        let entry = |k: &u64| self.entries.get(k);
        w.put_u64_slice(&keys);
        w.put_u64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.stats.count())
                .collect::<Vec<_>>(),
        );
        w.put_f64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.stats.mean())
                .collect::<Vec<_>>(),
        );
        w.put_f64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.stats.m2())
                .collect::<Vec<_>>(),
        );
        w.put_f64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.last_secs)
                .collect::<Vec<_>>(),
        );
        w.put_u64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.last_update)
                .collect::<Vec<_>>(),
        );
        w.put_f64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.holt_level)
                .collect::<Vec<_>>(),
        );
        w.put_f64_slice(
            &keys
                .iter()
                .filter_map(entry)
                .map(|e| e.holt_trend)
                .collect::<Vec<_>>(),
        );
    }

    /// Decodes a cache from an artefact-store section. All config values
    /// are re-validated (the constructor's assertions must never fire on
    /// hostile bytes — bad values become typed errors) and the SoA arrays
    /// must agree on length.
    pub(crate) fn store_decode(
        r: &mut stage_store::SectionReader<'_>,
    ) -> Result<Self, stage_store::StoreError> {
        let malformed = |d: &str| stage_store::StoreError::Malformed { detail: d.into() };
        let capacity = usize::try_from(r.u64()?).map_err(|_| malformed("cache capacity"))?;
        let alpha = r.f64()?;
        let mode = match r.u32()? {
            0 => {
                let _ = (r.f64()?, r.f64()?);
                CacheMode::AlphaBlend
            }
            1 => CacheMode::Holt {
                level_alpha: r.f64()?,
                trend_beta: r.f64()?,
            },
            t => return Err(malformed(&format!("unknown cache mode tag {t}"))),
        };
        if capacity == 0 || !(0.0..=1.0).contains(&alpha) {
            return Err(malformed("cache config out of range"));
        }
        if let CacheMode::Holt {
            level_alpha,
            trend_beta,
        } = mode
        {
            if !(0.0..=1.0).contains(&level_alpha) || !(0.0..=1.0).contains(&trend_beta) {
                return Err(malformed("Holt factors out of range"));
            }
        }
        let update_seq = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let keys = r.u64_vec()?;
        let counts = r.u64_vec()?;
        let means = r.f64_vec()?;
        let m2s = r.f64_vec()?;
        let lasts = r.f64_vec()?;
        let last_updates = r.u64_vec()?;
        let holt_levels = r.f64_vec()?;
        let holt_trends = r.f64_vec()?;
        let n = keys.len();
        if [
            counts.len(),
            means.len(),
            m2s.len(),
            lasts.len(),
            last_updates.len(),
            holt_levels.len(),
            holt_trends.len(),
        ]
        .iter()
        .any(|&l| l != n)
        {
            return Err(malformed("cache SoA arrays disagree on length"));
        }
        if n > capacity {
            return Err(malformed("cache holds more entries than its capacity"));
        }
        let mut entries = HashMap::with_capacity(n);
        for i in 0..n {
            let prev = entries.insert(
                keys[i],
                Entry {
                    stats: Welford::from_parts(counts[i], means[i], m2s[i]),
                    last_secs: lasts[i],
                    last_update: last_updates[i],
                    holt_level: holt_levels[i],
                    holt_trend: holt_trends[i],
                },
            );
            if prev.is_some() {
                return Err(malformed("duplicate cache key"));
            }
        }
        Ok(Self {
            config: CacheConfig {
                capacity,
                alpha,
                mode,
            },
            entries,
            update_seq,
            hits,
            misses,
        })
    }

    /// Evicts the entry with the smallest `last_update`. Linear scan —
    /// at the paper's capacity (2 000) this is microseconds and happens at
    /// most once per insert.
    fn evict_oldest(&mut self) {
        let before = self.entries.len();
        if let Some((&key, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_update) {
            self.entries.remove(&key);
        }
        debug_assert!(
            self.entries.len() < before.max(1),
            "eviction must shrink a non-empty cache"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cache(capacity: usize, alpha: f64) -> ExecTimeCache {
        ExecTimeCache::new(CacheConfig {
            capacity,
            alpha,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = cache(10, 0.8);
        assert_eq!(c.lookup(1), None);
        c.record(1, 5.0);
        assert_eq!(c.lookup(1), Some(5.0));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn alpha_blend_matches_paper_formula() {
        let mut c = cache(10, 0.8);
        c.record(1, 10.0);
        c.record(1, 20.0);
        c.record(1, 60.0);
        // mean = 30, last = 60 -> 0.8*30 + 0.2*60 = 36
        assert!((c.lookup(1).unwrap() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn alpha_zero_is_pure_freshness() {
        let mut c = cache(10, 0.0);
        c.record(1, 10.0);
        c.record(1, 50.0);
        assert_eq!(c.lookup(1), Some(50.0));
    }

    #[test]
    fn alpha_one_is_pure_mean() {
        let mut c = cache(10, 1.0);
        c.record(1, 10.0);
        c.record(1, 50.0);
        assert_eq!(c.lookup(1), Some(30.0));
    }

    #[test]
    fn eviction_removes_least_recently_updated() {
        let mut c = cache(2, 0.8);
        c.record(1, 1.0);
        c.record(2, 2.0);
        c.record(1, 1.5); // refresh key 1; key 2 is now oldest
        c.record(3, 3.0); // evicts key 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = cache(5, 0.8);
        for k in 0..100u64 {
            c.record(k, k as f64);
            assert!(c.len() <= 5);
        }
        // The five most recent survive.
        for k in 95..100 {
            assert!(c.contains(k));
        }
    }

    #[test]
    fn observed_variance_tracks_spread() {
        let mut c = cache(10, 0.8);
        c.record(1, 10.0);
        c.record(1, 20.0);
        assert!((c.observed_variance(1).unwrap() - 25.0).abs() < 1e-9);
        assert_eq!(c.observed_variance(99), None);
    }

    #[test]
    fn key_of_is_stable_for_identical_plans() {
        use stage_plan::{PlanBuilder, S3Format};
        let build = || {
            PlanBuilder::select()
                .scan("t", S3Format::Local, 1e5, 64.0)
                .hash_aggregate(0.01)
                .finish()
        };
        assert_eq!(
            ExecTimeCache::key_of(&build()),
            ExecTimeCache::key_of(&build())
        );
    }

    #[test]
    fn key_of_features_matches_key_of() {
        use stage_plan::{plan_feature_vector, PlanBuilder, S3Format};
        let plan = PlanBuilder::select()
            .scan("t", S3Format::Local, 1e5, 64.0)
            .hash_aggregate(0.01)
            .finish();
        let features = plan_feature_vector(&plan).0;
        assert_eq!(
            ExecTimeCache::key_of(&plan),
            ExecTimeCache::key_of_features(&features)
        );
    }

    #[test]
    fn batch_lookup_counters_consistent_with_scalar() {
        // The same key sequence through lookup_many and through per-key
        // get_by_key must produce identical predictions AND identical
        // hit/miss counters — the batch path may not double- or
        // under-count.
        let keys: Vec<u64> = vec![1, 2, 1, 3, 2, 2, 9, 1];
        let mut batched = cache(10, 0.8);
        let mut scalar = cache(10, 0.8);
        for c in [&mut batched, &mut scalar] {
            c.record(1, 4.0);
            c.record(2, 8.0);
            c.record(2, 10.0);
        }
        let from_batch = batched.lookup_many(&keys);
        let from_scalar: Vec<Option<f64>> = keys.iter().map(|&k| scalar.get_by_key(k)).collect();
        assert_eq!(from_batch, from_scalar);
        assert_eq!(batched.hits(), scalar.hits());
        assert_eq!(batched.misses(), scalar.misses());
        assert_eq!(
            batched.hits() + batched.misses(),
            keys.len() as u64,
            "every batch element must count exactly once"
        );
        // 1, 2 present (hits), 3, 9 absent (misses): 6 hits, 2 misses.
        assert_eq!(batched.hits(), 6);
        assert_eq!(batched.misses(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        cache(0, 0.8);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        cache(10, 1.5);
    }

    #[test]
    fn size_accounting_grows_with_entries() {
        let mut c = cache(100, 0.8);
        let empty = c.approx_size_bytes();
        for k in 0..50u64 {
            c.record(k, 1.0);
        }
        assert!(c.approx_size_bytes() > empty);
    }

    #[test]
    fn holt_mode_tracks_a_trend() {
        let mut c = ExecTimeCache::new(CacheConfig {
            capacity: 10,
            alpha: 0.8,
            mode: CacheMode::Holt {
                level_alpha: 0.8,
                trend_beta: 0.5,
            },
        });
        // Linearly growing exec-times: Holt should predict ahead of the
        // last observation, the α-blend lags behind it.
        for i in 0..20 {
            c.record(1, 10.0 + i as f64);
        }
        let holt = c.lookup(1).unwrap();
        assert!(holt > 29.0, "Holt should extrapolate the trend: {holt}");

        let mut blend = ExecTimeCache::new(CacheConfig::default());
        for i in 0..20 {
            blend.record(1, 10.0 + i as f64);
        }
        let b = blend.lookup(1).unwrap();
        assert!(b < 25.0, "α-blend lags on trends: {b}");
        assert!(holt > b);
    }

    #[test]
    fn holt_mode_never_negative() {
        let mut c = ExecTimeCache::new(CacheConfig {
            capacity: 10,
            alpha: 0.8,
            mode: CacheMode::Holt {
                level_alpha: 0.9,
                trend_beta: 0.9,
            },
        });
        // Sharply falling series could extrapolate below zero.
        for v in [100.0, 10.0, 1.0, 0.1] {
            c.record(1, v);
        }
        assert!(c.lookup(1).unwrap() >= 0.0);
    }

    #[test]
    #[should_panic(expected = "Holt smoothing")]
    fn holt_rejects_bad_factors() {
        ExecTimeCache::new(CacheConfig {
            capacity: 10,
            alpha: 0.8,
            mode: CacheMode::Holt {
                level_alpha: 1.5,
                trend_beta: 0.5,
            },
        });
    }

    proptest! {
        // Model-based check against a reference implementation of the
        // paper's eviction rule, under arbitrary lookup/record
        // interleavings:
        //   * the cache never exceeds its capacity,
        //   * exactly the least-recently-updated entry is evicted (the
        //     surviving key set equals the reference model's at every step),
        //   * hits + misses equals the number of lookup calls.
        #[test]
        fn prop_capacity_lru_eviction_and_counters(
            ops in proptest::collection::vec(
                (0u64..12, 0.01f64..50.0, proptest::bool::ANY),
                1..400,
            )
        ) {
            const CAP: usize = 4;
            let mut c = cache(CAP, 0.8);
            // Reference model: key -> last-update sequence number. Seqs are
            // unique, so "least recently updated" is unambiguous.
            let mut reference: std::collections::HashMap<u64, u64> =
                std::collections::HashMap::new();
            let mut seq = 0u64;
            let mut lookups = 0u64;
            for &(k, v, is_lookup) in &ops {
                if is_lookup {
                    let hit = c.lookup(k).is_some();
                    lookups += 1;
                    prop_assert_eq!(hit, reference.contains_key(&k));
                } else {
                    c.record(k, v);
                    seq += 1;
                    if !reference.contains_key(&k) && reference.len() == CAP {
                        let oldest =
                            *reference.iter().min_by_key(|&(_, &s)| s).unwrap().0;
                        reference.remove(&oldest);
                    }
                    reference.insert(k, seq);
                }
                prop_assert!(c.len() <= CAP);
                prop_assert_eq!(c.len(), reference.len());
            }
            for k in reference.keys() {
                prop_assert!(c.contains(*k));
            }
            prop_assert_eq!(c.hits() + c.misses(), lookups);
        }

        // Debug-mode hammer for the in-structure `debug_assert!` invariants
        // (len ≤ capacity after every op) under the Holt cache mode, whose
        // update path differs from the α-blend one the other properties
        // cover.
        #[test]
        fn prop_holt_mode_keeps_capacity_and_nonnegative_predictions(
            ops in proptest::collection::vec((0u64..16, 0.01f64..100.0), 1..300)
        ) {
            let mut c = ExecTimeCache::new(CacheConfig {
                capacity: 4,
                alpha: 0.8,
                mode: CacheMode::Holt { level_alpha: 0.7, trend_beta: 0.3 },
            });
            for &(k, v) in &ops {
                c.record(k, v);
                prop_assert!(c.len() <= 4);
                if let Some(p) = c.lookup(k) {
                    prop_assert!(p >= 0.0, "Holt prediction went negative: {p}");
                }
            }
        }

        #[test]
        fn prop_len_bounded_and_prediction_in_range(
            ops in proptest::collection::vec((0u64..20, 0.01f64..100.0), 1..300)
        ) {
            let mut c = cache(8, 0.8);
            for &(k, v) in &ops {
                c.record(k, v);
                prop_assert!(c.len() <= 8);
            }
            let lo = ops.iter().map(|o| o.1).fold(f64::INFINITY, f64::min);
            let hi = ops.iter().map(|o| o.1).fold(0.0f64, f64::max);
            for k in 0..20u64 {
                if let Some(p) = c.lookup(k) {
                    prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9);
                }
            }
        }
    }
}
