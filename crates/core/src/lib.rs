//! # stage-core
//!
//! The **Stage predictor** (paper §4): a hierarchical query exec-time
//! predictor with three model states, routed in order of cost:
//!
//! 1. [`cache::ExecTimeCache`] — memorizes recently executed queries by the
//!    FNV hash of their 33-dim plan vector; predicts
//!    `α·mean + (1−α)·last` (α = 0.8) with Welford running statistics and
//!    least-recently-updated eviction (§4.2).
//! 2. [`local::LocalModel`] — an instance-optimized Bayesian ensemble of
//!    NLL-trained gradient-boosting models with decomposed uncertainty
//!    (§4.3), fed by a bounded, de-duplicated, duration-bucketed
//!    [`pool::TrainingPool`].
//! 3. [`global::GlobalModel`] — the fleet-trained plan-GCN, consulted only
//!    when the local model is uncertain *and* thinks the query is
//!    long-running (§4.4).
//!
//! [`stage::StagePredictor`] wires the three together behind the
//! [`predictor::ExecTimePredictor`] trait; [`autowlm::AutoWlmPredictor`] is
//! the prior-production baseline (one squared-error GBM per instance,
//! trained on every executed query).
//!
//! All models train and predict in `ln(1+seconds)` space, which linearizes
//! the fleet's heavy latency skew; conversions happen at the trait boundary
//! so callers only ever see seconds.

pub mod autowlm;
pub mod benefit;
pub mod cache;
pub mod drift;
pub mod global;
pub mod local;
pub mod persist;
pub mod pool;
pub mod predictor;
pub mod stage;
pub mod storefmt;
pub mod sync;

pub use autowlm::{AutoWlmConfig, AutoWlmPredictor};
pub use benefit::{estimate_benefit, BenefitEstimate};
pub use cache::{CacheConfig, CacheMode, ExecTimeCache};
pub use drift::{DriftConfig, DriftSentinel};
pub use global::{plan_to_tree_sample, GlobalModel, GlobalModelConfig, GLOBAL_SYS_DIM_BASE};
pub use local::{LocalModel, LocalModelConfig, LocalPrediction};
pub use persist::{PersistFaults, RestoreError};
pub use pool::{PoolConfig, TrainingPool};
pub use predictor::{
    ExecTimePredictor, Prediction, PredictionSource, SystemContext, DEFAULT_PREDICTION_SECS,
};
pub use stage::{
    ComponentFaults, DegradedStats, RetrainFault, RoutingConfig, RoutingStats, StageConfig,
    StagePredictor, StageSnapshot,
};
pub use storefmt::{
    load_global_store, load_stage_store, save_global_store, save_stage_store,
    save_stage_store_dirty, store_generation, StoreCheckpoint,
};
pub use sync::{LockRank, OrderedMutex, OrderedRwLock};

/// Converts seconds to the model target space `ln(1 + secs)`.
pub fn to_log_space(secs: f64) -> f64 {
    secs.max(0.0).ln_1p()
}

/// Converts a model-space prediction back to seconds (inverse of
/// [`to_log_space`], floored at zero).
pub fn from_log_space(log: f64) -> f64 {
    log.exp_m1().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_round_trip() {
        for secs in [0.0, 0.001, 1.0, 59.9, 3600.0] {
            let back = from_log_space(to_log_space(secs));
            assert!((back - secs).abs() < 1e-9 * (1.0 + secs));
        }
    }

    #[test]
    fn log_space_clamps_negatives() {
        assert_eq!(to_log_space(-5.0), 0.0);
        assert_eq!(from_log_space(-3.0), 0.0);
    }
}
