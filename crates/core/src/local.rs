//! The instance-optimized local model (paper §4.3): a Bayesian ensemble of
//! NLL-trained gradient-boosting models over the 33-dim plan vector, with
//! decomposed prediction uncertainty. Retrains periodically from the
//! [`crate::pool::TrainingPool`] as observations accumulate — the online
//! analogue of Redshift retraining per-cluster models in the background.

use crate::from_log_space;
use crate::pool::TrainingPool;
use serde::{Deserialize, Serialize};
use stage_gbdt::{BayesianEnsemble, EnsembleParams, NgBoostParams};

/// Local-model configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocalModelConfig {
    /// Ensemble hyper-parameters (paper: K = 10 members, 200 estimators,
    /// depth 6; the default trims estimators for online replay speed —
    /// early stopping usually stops far earlier anyway).
    pub ensemble: EnsembleParams,
    /// Minimum pool size before the first training.
    pub min_train_examples: usize,
    /// Retrain after this many new observations since the last training.
    pub retrain_interval: usize,
}

impl Default for LocalModelConfig {
    fn default() -> Self {
        Self {
            ensemble: EnsembleParams {
                n_members: 10,
                member: NgBoostParams {
                    n_estimators: 60,
                    ..NgBoostParams::default()
                },
                seed: 42,
            },
            min_train_examples: 30,
            retrain_interval: 300,
        }
    }
}

/// A local-model prediction with decomposed uncertainty, all uncertainty in
/// `ln(1+secs)` space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalPrediction {
    /// Point prediction in seconds.
    pub exec_secs: f64,
    /// Mean in log space (the raw ensemble output, Eq. 1).
    pub log_mean: f64,
    /// Ensemble-disagreement (model/knowledge) uncertainty (Eq. 2, term 1).
    pub model_uncertainty: f64,
    /// Mean member variance (data uncertainty; Eq. 2, term 2).
    pub data_uncertainty: f64,
}

impl LocalPrediction {
    /// Total predictive variance (Eq. 2).
    pub fn total_variance(&self) -> f64 {
        self.model_uncertainty + self.data_uncertainty
    }

    /// Total predictive standard deviation in log space.
    pub fn log_std(&self) -> f64 {
        self.total_variance().sqrt()
    }

    /// First-order standard deviation in *seconds*: `exec_secs × log_std`.
    /// Log-space std is scale-free (good for routing thresholds); this
    /// scale-aware version is what correlates with absolute error and is
    /// used for PRR-style uncertainty ranking (paper Figs. 10–11).
    pub fn seconds_std(&self) -> f64 {
        self.exec_secs * self.log_std()
    }
}

/// The local model: an optional trained ensemble plus retraining policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocalModel {
    config: LocalModelConfig,
    ensemble: Option<BayesianEnsemble>,
    observations_since_train: usize,
    trainings: u64,
    instance_salt: u64,
}

impl LocalModel {
    /// Creates an untrained local model.
    pub fn new(config: LocalModelConfig) -> Self {
        Self {
            config,
            ensemble: None,
            observations_since_train: 0,
            trainings: 0,
            instance_salt: 0,
        }
    }

    /// Sets the per-instance seed salt. Retraining seeds derive only from
    /// the configured base seed, this salt, and the retrain counter — all
    /// per-instance state — so replays are bit-identical regardless of how
    /// instances are scheduled across threads, while distinct instances
    /// still train decorrelated ensembles.
    pub fn set_instance_salt(&mut self, salt: u64) {
        self.instance_salt = salt;
    }

    /// The per-instance seed salt.
    pub fn instance_salt(&self) -> u64 {
        self.instance_salt
    }

    /// Whether a trained ensemble is available.
    pub fn is_trained(&self) -> bool {
        self.ensemble.is_some()
    }

    /// Number of trainings performed.
    pub fn trainings(&self) -> u64 {
        self.trainings
    }

    /// Notes one new pool observation and retrains when due: first at
    /// `min_train_examples`, then every `retrain_interval` observations.
    pub fn note_observation(&mut self, pool: &TrainingPool) {
        self.observations_since_train += 1;
        let due = match self.ensemble {
            None => pool.len() >= self.config.min_train_examples,
            Some(_) => self.observations_since_train >= self.config.retrain_interval,
        };
        if due {
            self.retrain(pool);
        }
    }

    /// Whether the *next* [`LocalModel::note_observation`] call would
    /// trigger a retraining (given `pool` already contains the new
    /// observation). Lets callers intercept a due retrain — e.g. to skip a
    /// poisoned one — before committing to it.
    pub fn retrain_due_after_next(&self, pool: &TrainingPool) -> bool {
        match self.ensemble {
            None => pool.len() >= self.config.min_train_examples,
            Some(_) => self.observations_since_train + 1 >= self.config.retrain_interval,
        }
    }

    /// Counts an observation *without* retraining even if one is due — the
    /// degraded path for a poisoned retrain: the stale ensemble keeps
    /// serving, and the skipped training is re-attempted at the next due
    /// observation (the counter keeps climbing past the interval).
    pub fn defer_retrain(&mut self) {
        self.observations_since_train += 1;
    }

    /// Forces a retraining from the pool (no-op on an empty pool).
    pub fn retrain(&mut self, pool: &TrainingPool) {
        let Some(dataset) = pool.to_dataset() else {
            return;
        };
        // Vary the seed across retrainings so ensembles don't ossify, and
        // across instances so fleets don't train in lockstep. Derived only
        // from per-instance state (base seed, instance salt, retrain
        // counter) — never from global counters or thread identity — so a
        // replay is deterministic at any parallelism.
        let params = EnsembleParams {
            seed: (self.config.ensemble.seed
                ^ self.instance_salt.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(self.trainings.wrapping_mul(0x9E37_79B9)),
            ..self.config.ensemble
        };
        if let Some(e) = BayesianEnsemble::fit(&dataset, &params) {
            self.ensemble = Some(e);
            self.trainings += 1;
            self.observations_since_train = 0;
        }
    }

    /// Predicts exec-time and uncertainty for a 33-dim feature vector.
    /// `None` until the first training.
    pub fn predict(&self, features: &[f64]) -> Option<LocalPrediction> {
        let ensemble = self.ensemble.as_ref()?;
        let p = ensemble.predict(features);
        Some(LocalPrediction {
            exec_secs: from_log_space(p.mean),
            log_mean: p.mean,
            model_uncertainty: p.model_uncertainty,
            data_uncertainty: p.data_uncertainty,
        })
    }

    /// Predicts exec-time and uncertainty for a batch of feature vectors —
    /// bit-identical to calling [`LocalModel::predict`] per row, but one
    /// pass over the ensemble's flat batched path. `None` until the first
    /// training (matching the scalar contract for every row at once).
    pub fn predict_batch<R: AsRef<[f64]>>(&self, features: &[R]) -> Option<Vec<LocalPrediction>> {
        let ensemble = self.ensemble.as_ref()?;
        Some(
            ensemble
                .predict_batch(features)
                .into_iter()
                .map(|p| LocalPrediction {
                    exec_secs: from_log_space(p.mean),
                    log_mean: p.mean,
                    model_uncertainty: p.model_uncertainty,
                    data_uncertainty: p.data_uncertainty,
                })
                .collect(),
        )
    }

    /// Approximate resident size in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .ensemble
                .as_ref()
                .map(BayesianEnsemble::approx_size_bytes)
                .unwrap_or(0)
    }

    /// The configuration this model was built with (store restore needs it
    /// to reassemble the enclosing [`crate::stage::StageConfig`]).
    pub(crate) fn store_config(&self) -> LocalModelConfig {
        self.config
    }

    /// Encodes the local model into an artefact-store section: the full
    /// retrain policy (so a restored shard keeps the same cadence), then
    /// every ensemble member as scalar head state plus both tree heads in
    /// the flat five-array layout. Everything is written via `to_bits`
    /// images, so restored predictions are bit-identical.
    pub(crate) fn store_encode(&self, w: &mut stage_store::SectionWriter) {
        encode_ensemble_params(w, &self.config.ensemble);
        w.put_u64(self.config.min_train_examples as u64);
        w.put_u64(self.config.retrain_interval as u64);
        w.put_u64(self.observations_since_train as u64);
        w.put_u64(self.trainings);
        w.put_u64(self.instance_salt);
        match &self.ensemble {
            None => w.put_bool(false),
            Some(e) => {
                w.put_bool(true);
                w.put_u64(e.n_members() as u64);
                for m in e.members() {
                    let (base_mu, base_log_var, learning_rate, log_var_range, n_cols) =
                        m.scalar_parts();
                    w.put_f64(base_mu);
                    w.put_f64(base_log_var);
                    w.put_f64(learning_rate);
                    w.put_f64(log_var_range.0);
                    w.put_f64(log_var_range.1);
                    w.put_u64(n_cols as u64);
                    for head in [m.mu_trees(), m.var_trees()] {
                        w.put_u64(head.len() as u64);
                        for tree in head {
                            let (feature, threshold, left, right, gain) = tree.to_flat_parts();
                            w.put_u32_slice(&feature);
                            w.put_f64_slice(&threshold);
                            w.put_u32_slice(&left);
                            w.put_u32_slice(&right);
                            w.put_f64_slice(&gain);
                        }
                    }
                }
            }
        }
    }

    /// Decodes a local model from an artefact-store section; malformed
    /// trees (bad child links) and inconsistent heads are typed errors.
    pub(crate) fn store_decode(
        r: &mut stage_store::SectionReader<'_>,
    ) -> Result<Self, stage_store::StoreError> {
        let malformed = |d: &str| stage_store::StoreError::Malformed { detail: d.into() };
        let ensemble_params = decode_ensemble_params(r)?;
        let min_train_examples =
            usize::try_from(r.u64()?).map_err(|_| malformed("min_train_examples"))?;
        let retrain_interval =
            usize::try_from(r.u64()?).map_err(|_| malformed("retrain_interval"))?;
        let observations_since_train =
            usize::try_from(r.u64()?).map_err(|_| malformed("observations_since_train"))?;
        let trainings = r.u64()?;
        let instance_salt = r.u64()?;
        let ensemble = if r.bool()? {
            let n_members = usize::try_from(r.u64()?).map_err(|_| malformed("member count"))?;
            // A member needs at least its six scalar fields (48 bytes) plus
            // two head counts; reject hostile counts before allocating.
            if n_members.saturating_mul(64) > r.remaining() + 64 {
                return Err(malformed("member count overruns section"));
            }
            let mut members = Vec::with_capacity(n_members);
            for _ in 0..n_members {
                let base_mu = r.f64()?;
                let base_log_var = r.f64()?;
                let learning_rate = r.f64()?;
                let log_var_range = (r.f64()?, r.f64()?);
                let n_cols = usize::try_from(r.u64()?).map_err(|_| malformed("n_cols"))?;
                let mut heads = Vec::with_capacity(2);
                for _ in 0..2 {
                    let n_trees = usize::try_from(r.u64()?).map_err(|_| malformed("tree count"))?;
                    if n_trees.saturating_mul(40) > r.remaining() + 40 {
                        return Err(malformed("tree count overruns section"));
                    }
                    let mut trees = Vec::with_capacity(n_trees);
                    for _ in 0..n_trees {
                        let feature = r.u32_vec()?;
                        let threshold = r.f64_vec()?;
                        let left = r.u32_vec()?;
                        let right = r.u32_vec()?;
                        let gain = r.f64_vec()?;
                        let tree = stage_gbdt::Tree::from_flat_parts(
                            &feature, &threshold, &left, &right, &gain,
                        )
                        .ok_or_else(|| malformed("tree arrays are structurally invalid"))?;
                        trees.push(tree);
                    }
                    heads.push(trees);
                }
                let var_trees = heads.pop().unwrap_or_default();
                let mu_trees = heads.pop().unwrap_or_default();
                let member = stage_gbdt::NgBoost::from_parts(
                    base_mu,
                    base_log_var,
                    learning_rate,
                    log_var_range,
                    n_cols,
                    mu_trees,
                    var_trees,
                )
                .ok_or_else(|| malformed("member heads disagree on length"))?;
                members.push(member);
            }
            Some(
                BayesianEnsemble::from_members(members)
                    .ok_or_else(|| malformed("trained flag set but zero members"))?,
            )
        } else {
            None
        };
        Ok(Self {
            config: LocalModelConfig {
                ensemble: ensemble_params,
                min_train_examples,
                retrain_interval,
            },
            ensemble,
            observations_since_train,
            trainings,
            instance_salt,
        })
    }
}

/// Writes every ensemble hyper-parameter (member NGBoost + tree params
/// included) so a restored model retrains exactly as the original would.
fn encode_ensemble_params(w: &mut stage_store::SectionWriter, p: &EnsembleParams) {
    w.put_u64(p.n_members as u64);
    w.put_u64(p.seed);
    let m = &p.member;
    w.put_u64(m.n_estimators as u64);
    w.put_f64(m.learning_rate);
    w.put_f64(m.subsample);
    w.put_f64(m.colsample);
    w.put_u64(m.early_stopping_rounds as u64);
    w.put_f64(m.validation_fraction);
    w.put_u64(m.n_bins as u64);
    w.put_f64(m.log_var_range.0);
    w.put_f64(m.log_var_range.1);
    w.put_u64(m.seed);
    let t = &m.tree;
    w.put_u64(t.max_depth as u64);
    w.put_f64(t.lambda);
    w.put_f64(t.min_child_weight);
    w.put_u64(t.min_samples_leaf as u64);
    w.put_f64(t.min_gain);
}

fn decode_ensemble_params(
    r: &mut stage_store::SectionReader<'_>,
) -> Result<EnsembleParams, stage_store::StoreError> {
    let malformed = |d: &str| stage_store::StoreError::Malformed { detail: d.into() };
    let to_usize =
        |v: u64| usize::try_from(v).map_err(|_| malformed("ensemble param overflows usize"));
    let n_members = to_usize(r.u64()?)?;
    let seed = r.u64()?;
    let n_estimators = to_usize(r.u64()?)?;
    let learning_rate = r.f64()?;
    let subsample = r.f64()?;
    let colsample = r.f64()?;
    let early_stopping_rounds = to_usize(r.u64()?)?;
    let validation_fraction = r.f64()?;
    let n_bins = to_usize(r.u64()?)?;
    let log_var_range = (r.f64()?, r.f64()?);
    let member_seed = r.u64()?;
    let max_depth = to_usize(r.u64()?)?;
    let lambda = r.f64()?;
    let min_child_weight = r.f64()?;
    let min_samples_leaf = to_usize(r.u64()?)?;
    let min_gain = r.f64()?;
    Ok(EnsembleParams {
        n_members,
        member: NgBoostParams {
            n_estimators,
            learning_rate,
            tree: stage_gbdt::TreeParams {
                max_depth,
                lambda,
                min_child_weight,
                min_samples_leaf,
                min_gain,
            },
            subsample,
            colsample,
            early_stopping_rounds,
            validation_fraction,
            n_bins,
            log_var_range,
            seed: member_seed,
        },
        seed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn quick_config() -> LocalModelConfig {
        LocalModelConfig {
            ensemble: EnsembleParams {
                n_members: 4,
                member: NgBoostParams {
                    n_estimators: 25,
                    ..NgBoostParams::default()
                },
                seed: 7,
            },
            min_train_examples: 20,
            retrain_interval: 50,
        }
    }

    /// Fills a pool with y ≈ 0.1 * x[0] seconds.
    fn filled_pool(n: usize, seed: u64) -> TrainingPool {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pool = TrainingPool::new(PoolConfig::default());
        for _ in 0..n {
            let x: f64 = rng.gen_range(0.0..100.0);
            let noise: f64 = rng.gen_range(0.9..1.1);
            pool.add(vec![x, 1.0], 0.1 * x * noise);
        }
        pool
    }

    #[test]
    fn untrained_predicts_none() {
        let m = LocalModel::new(quick_config());
        assert!(!m.is_trained());
        assert!(m.predict(&[1.0, 1.0]).is_none());
    }

    #[test]
    fn trains_at_min_examples() {
        let mut m = LocalModel::new(quick_config());
        let mut pool = TrainingPool::new(PoolConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..25 {
            let x: f64 = rng.gen_range(0.0..100.0);
            pool.add(vec![x, 1.0], 0.1 * x);
            m.note_observation(&pool);
            if i < 18 {
                assert!(!m.is_trained(), "trained too early at {i}");
            }
        }
        assert!(m.is_trained());
        assert_eq!(m.trainings(), 1);
    }

    #[test]
    fn retrains_on_interval() {
        let mut m = LocalModel::new(quick_config());
        let pool = filled_pool(100, 2);
        m.retrain(&pool);
        assert_eq!(m.trainings(), 1);
        for _ in 0..50 {
            m.note_observation(&pool);
        }
        assert_eq!(m.trainings(), 2);
    }

    #[test]
    fn learns_the_mapping() {
        let mut m = LocalModel::new(quick_config());
        m.retrain(&filled_pool(500, 3));
        let p = m.predict(&[50.0, 1.0]).unwrap();
        assert!(
            (p.exec_secs - 5.0).abs() < 2.0,
            "expected ~5s, got {}",
            p.exec_secs
        );
        assert!(p.total_variance() > 0.0);
        assert!((p.log_std().powi(2) - p.total_variance()).abs() < 1e-12);
        assert!(p.exec_secs >= 0.0);
    }

    #[test]
    fn retrain_seed_depends_only_on_instance_state() {
        let pool = filled_pool(200, 9);
        let predict_with_salt = |salt: u64| {
            let mut m = LocalModel::new(quick_config());
            m.set_instance_salt(salt);
            m.retrain(&pool);
            m.retrain(&pool); // second training steps the retrain counter
            m.predict(&[50.0, 1.0]).unwrap()
        };
        // Same per-instance state -> bit-identical model, no matter when or
        // where (which thread) the retraining ran.
        let a = predict_with_salt(17);
        let b = predict_with_salt(17);
        assert_eq!(a, b);
        // Default salt is zero and is reported back.
        let mut m = LocalModel::new(quick_config());
        assert_eq!(m.instance_salt(), 0);
        m.set_instance_salt(3);
        assert_eq!(m.instance_salt(), 3);
    }

    #[test]
    fn retrain_due_preview_and_deferral() {
        let mut m = LocalModel::new(quick_config()); // min 20, interval 50
        let pool = filled_pool(100, 5);
        // Untrained + a big-enough pool: the next observation would train.
        assert!(m.retrain_due_after_next(&pool));
        m.retrain(&pool);
        assert_eq!(m.trainings(), 1);
        for _ in 0..48 {
            assert!(!m.retrain_due_after_next(&pool));
            m.note_observation(&pool);
        }
        assert_eq!(m.trainings(), 1);
        m.note_observation(&pool); // 49th since training
        assert!(m.retrain_due_after_next(&pool), "50th would retrain");
        // A poisoned retrain defers: the observation counts, training
        // doesn't run, and the debt stays due until a healthy observation.
        m.defer_retrain();
        assert_eq!(m.trainings(), 1);
        assert!(m.retrain_due_after_next(&pool));
        m.note_observation(&pool);
        assert_eq!(m.trainings(), 2);
    }

    #[test]
    fn retrain_on_empty_pool_is_noop() {
        let mut m = LocalModel::new(quick_config());
        let empty = TrainingPool::new(PoolConfig::default());
        m.retrain(&empty);
        assert!(!m.is_trained());
        assert_eq!(m.trainings(), 0);
    }

    #[test]
    fn size_grows_after_training() {
        let mut m = LocalModel::new(quick_config());
        let before = m.approx_size_bytes();
        m.retrain(&filled_pool(100, 4));
        assert!(m.approx_size_bytes() > before);
    }
}
