//! What-if benefit estimation for plan changes.
//!
//! Redshift's automatic materialized-view advisor "uses the query optimizer
//! to regenerate queries' execution plans as if certain materialized view
//! exists and then uses the exec-time predictor to estimate the performance
//! of these plans to determine the benefits" (paper §2.1), and needs
//! confidence intervals "to ensure good worst-case behavior" of such changes
//! (§2.1, §3). [`estimate_benefit`] packages that pattern: predict both
//! plans, difference the means, and — when the predictor supplies
//! uncertainty — propagate it into a conservative interval on the benefit.

use crate::predictor::{ExecTimePredictor, Prediction, SystemContext};
use serde::{Deserialize, Serialize};
use stage_plan::PhysicalPlan;

/// The estimated benefit of replacing `baseline` with `candidate`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenefitEstimate {
    /// Predicted exec-time of the current plan (seconds).
    pub baseline_secs: f64,
    /// Predicted exec-time of the hypothetical plan (seconds).
    pub candidate_secs: f64,
    /// Point benefit: `baseline − candidate` (positive = improvement).
    pub benefit_secs: f64,
    /// Conservative benefit interval at the requested confidence, when both
    /// predictions carry uncertainty: lower bound assumes the baseline is as
    /// fast as its interval allows and the candidate as slow as its interval
    /// allows (and vice versa for the upper bound).
    pub interval: Option<(f64, f64)>,
}

impl BenefitEstimate {
    /// Whether the change is *robustly* beneficial: the conservative lower
    /// bound of the benefit is positive. Falls back to the point estimate
    /// when no interval is available.
    pub fn is_robust_win(&self) -> bool {
        match self.interval {
            Some((lo, _)) => lo > 0.0,
            None => self.benefit_secs > 0.0,
        }
    }

    /// Relative speedup `baseline / candidate` (∞-safe).
    pub fn speedup(&self) -> f64 {
        self.baseline_secs / self.candidate_secs.max(1e-9)
    }
}

fn bounds(p: &Prediction, z: f64) -> (f64, f64) {
    p.confidence_interval(z)
        .unwrap_or((p.exec_secs, p.exec_secs))
}

/// Estimates the benefit of `candidate` over `baseline` under `sys`, using
/// z-score `z` for the conservative interval (1.96 ≈ 95%).
///
/// Both plans are predicted without observing anything (pure what-if); the
/// predictor's state is unchanged except its routing counters.
pub fn estimate_benefit(
    predictor: &mut dyn ExecTimePredictor,
    baseline: &PhysicalPlan,
    candidate: &PhysicalPlan,
    sys: &SystemContext,
    z: f64,
) -> BenefitEstimate {
    let pb = predictor.predict(baseline, sys);
    let pc = predictor.predict(candidate, sys);
    let interval = if pb.log_variance.is_some() || pc.log_variance.is_some() {
        let (b_lo, b_hi) = bounds(&pb, z);
        let (c_lo, c_hi) = bounds(&pc, z);
        Some((b_lo - c_hi, b_hi - c_lo))
    } else {
        None
    };
    BenefitEstimate {
        baseline_secs: pb.exec_secs,
        candidate_secs: pc.exec_secs,
        benefit_secs: pb.exec_secs - pc.exec_secs,
        interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictionSource;
    use crate::stage::{StageConfig, StagePredictor};
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    #[test]
    fn cached_plans_give_point_benefit() {
        let mut p = StagePredictor::new(StageConfig::default());
        let sys = SystemContext::empty(1);
        let slow = plan(1e7);
        let fast = plan(1e3); // the "with MV" rewrite
        p.observe(&slow, &sys, 40.0);
        p.observe(&fast, &sys, 2.5);
        let b = estimate_benefit(&mut p, &slow, &fast, &sys, 1.96);
        assert!((b.benefit_secs - 37.5).abs() < 1e-9);
        assert!(b.is_robust_win());
        assert!(b.speedup() > 10.0);
        assert!(b.interval.is_none(), "cache predictions carry no variance");
    }

    #[test]
    fn local_model_benefit_carries_interval() {
        let mut p = StagePredictor::new(StageConfig {
            local: crate::local::LocalModelConfig {
                ensemble: stage_gbdt::EnsembleParams {
                    n_members: 4,
                    member: stage_gbdt::NgBoostParams {
                        n_estimators: 20,
                        ..stage_gbdt::NgBoostParams::default()
                    },
                    seed: 2,
                },
                min_train_examples: 20,
                retrain_interval: 100,
            },
            ..StageConfig::default()
        });
        let sys = SystemContext::empty(1);
        // Train the local model on sizes 1e4..5e5 (exec ∝ rows).
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            p.observe(&plan(rows), &sys, rows / 1e4);
        }
        // What-if on unseen sizes: both predictions come from the local
        // model, so the benefit gets a conservative interval.
        let b = estimate_benefit(&mut p, &plan(4.55e5), &plan(1.15e4), &sys, 1.96);
        let (lo, hi) = b.interval.expect("local predictions have variance");
        assert!(lo <= b.benefit_secs && b.benefit_secs <= hi);
        assert!(b.benefit_secs > 0.0, "bigger scan should be slower");
        // Conservative interval is wider than the point estimate is sure.
        assert!(hi - lo > 0.0);
    }

    #[test]
    fn negative_benefit_is_not_a_win() {
        let mut p = StagePredictor::new(StageConfig::default());
        let sys = SystemContext::empty(1);
        let a = plan(1e4);
        let b = plan(1e7);
        p.observe(&a, &sys, 1.0);
        p.observe(&b, &sys, 30.0);
        let est = estimate_benefit(&mut p, &a, &b, &sys, 1.96);
        assert!(est.benefit_secs < 0.0);
        assert!(!est.is_robust_win());
    }

    #[test]
    fn prediction_sources_visible_in_counters() {
        let mut p = StagePredictor::new(StageConfig::default());
        let sys = SystemContext::empty(1);
        let a = plan(2e4);
        p.observe(&a, &sys, 1.0);
        let _ = estimate_benefit(&mut p, &a, &plan(3e4), &sys, 1.96);
        // One cache hit (a) and one default (unseen plan, untrained local).
        assert_eq!(p.stats().cache, 1);
        assert_eq!(p.stats().fraction(PredictionSource::Default), 0.5);
    }
}
