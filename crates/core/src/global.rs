//! The transferable global model (paper §4.4): a plan-GCN trained across
//! many instances, wrapped for use inside Stage.
//!
//! This module owns the conversion from `stage_plan::PhysicalPlan` +
//! [`SystemContext`] into the `stage_nn` [`TreeSample`] representation:
//! per-node features via [`stage_plan::node_features`], and a system vector
//! = caller-supplied instance features ⊕ plan-summary features. Training is
//! offline (the paper uses a GPU fleet sweep); prediction is pure.

use crate::predictor::SystemContext;
use crate::{from_log_space, to_log_space};
use serde::{Deserialize, Serialize};
use stage_nn::{GcnConfig, PlanGcn, TreeSample};
use stage_plan::features::{plan_summary_features, PLAN_SUMMARY_DIM};
use stage_plan::{node_features, PhysicalPlan, PlanNode, NODE_FEATURE_DIM};

/// Number of plan-summary dims appended to the caller's system features.
pub const GLOBAL_SYS_DIM_BASE: usize = PLAN_SUMMARY_DIM;

/// Global-model configuration (architecture + training schedule).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalModelConfig {
    /// Hidden width (paper: 512; CPU default 64).
    pub hidden: usize,
    /// Message-passing rounds (paper: 8; CPU default 3).
    pub gcn_layers: usize,
    /// Dropout (paper: 0.2).
    pub dropout: f64,
    /// Adam learning rate.
    pub lr: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for GlobalModelConfig {
    fn default() -> Self {
        Self {
            hidden: 64,
            gcn_layers: 3,
            dropout: 0.2,
            lr: 1e-3,
            epochs: 25,
            batch_size: 32,
            seed: 42,
        }
    }
}

/// Converts a plan + system context + actual exec-time into a GCN training
/// sample. Node order is pre-order; children lists mirror the plan tree.
/// The target is `ln(1+secs)`.
pub fn plan_to_tree_sample(
    plan: &PhysicalPlan,
    sys: &SystemContext,
    actual_secs: f64,
) -> TreeSample {
    let mut node_feats: Vec<Vec<f64>> = Vec::with_capacity(plan.node_count());
    let mut children: Vec<Vec<usize>> = Vec::with_capacity(plan.node_count());

    fn walk(
        node: &PlanNode,
        node_feats: &mut Vec<Vec<f64>>,
        children: &mut Vec<Vec<usize>>,
    ) -> usize {
        let my_idx = node_feats.len();
        node_feats.push(node_features(node));
        children.push(Vec::with_capacity(node.children.len()));
        for child in &node.children {
            let c_idx = walk(child, node_feats, children);
            children[my_idx].push(c_idx);
        }
        my_idx
    }
    walk(&plan.root, &mut node_feats, &mut children);

    let mut sys_feats = sys.features.clone();
    sys_feats.extend_from_slice(&plan_summary_features(plan));

    TreeSample {
        node_feats,
        children,
        root: 0,
        sys_feats,
        target: to_log_space(actual_secs),
    }
}

/// The trained global model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GlobalModel {
    gcn: PlanGcn,
    sys_dim: usize,
    /// Post-hoc linear calibration `y ≈ a·ŷ + b` in log space, fitted on a
    /// held-out slice of the training samples. Corrects systematic
    /// scale/offset bias without touching the learned structure.
    calibration: (f64, f64),
    /// Log-space target range seen in training; predictions are clamped to
    /// it (the model has no business extrapolating beyond observed labels).
    target_range: (f64, f64),
    /// Mean epoch losses recorded during training (diagnostics).
    pub training_losses: Vec<f64>,
}

impl GlobalModel {
    /// Trains on pre-converted samples. `instance_feature_dim` is the width
    /// of the [`SystemContext`] features the model will be queried with.
    ///
    /// # Panics
    /// Panics if `samples` is empty or widths disagree with the config.
    pub fn train(
        samples: &[TreeSample],
        instance_feature_dim: usize,
        config: &GlobalModelConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "global model needs training samples");
        let sys_dim = instance_feature_dim + GLOBAL_SYS_DIM_BASE;
        let gcn_config = GcnConfig {
            node_feat_dim: NODE_FEATURE_DIM,
            sys_feat_dim: sys_dim,
            hidden: config.hidden,
            gcn_layers: config.gcn_layers,
            dropout: config.dropout,
            lr: config.lr,
            epochs: config.epochs,
            batch_size: config.batch_size,
            seed: config.seed,
        };
        // Hold out every 10th sample for calibration.
        let (fit_set, holdout): (Vec<_>, Vec<_>) =
            samples.iter().enumerate().partition(|(i, _)| i % 10 != 9);
        let fit_samples: Vec<TreeSample> = fit_set.into_iter().map(|(_, s)| s.clone()).collect();
        let holdout: Vec<TreeSample> = holdout.into_iter().map(|(_, s)| s.clone()).collect();

        let mut gcn = PlanGcn::new(gcn_config);
        let report = gcn.fit(&fit_samples);

        let lo = samples
            .iter()
            .map(|s| s.target)
            .fold(f64::INFINITY, f64::min);
        let hi = samples
            .iter()
            .map(|s| s.target)
            .fold(f64::NEG_INFINITY, f64::max);

        // Least-squares y = a·ŷ + b on the holdout (fallback: identity).
        let calibration = if holdout.len() >= 10 {
            let preds: Vec<f64> = holdout.iter().map(|s| gcn.predict(s)).collect();
            let ys: Vec<f64> = holdout.iter().map(|s| s.target).collect();
            let n = preds.len() as f64;
            let mx = preds.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let mut cov = 0.0;
            let mut var = 0.0;
            for (p, y) in preds.iter().zip(&ys) {
                cov += (p - mx) * (y - my);
                var += (p - mx).powi(2);
            }
            if var > 1e-9 {
                let a = cov / var;
                let b = my - a * mx;
                // Accept only a sane positive slope that actually improves
                // the holdout's absolute error; otherwise identity.
                let mae = |slope: f64, icept: f64| -> f64 {
                    preds
                        .iter()
                        .zip(&ys)
                        .map(|(p, y)| (slope * p + icept - y).abs())
                        .sum::<f64>()
                        / n
                };
                if (0.2..=3.0).contains(&a) && mae(a, b) < mae(1.0, 0.0) {
                    (a, b)
                } else {
                    (1.0, 0.0)
                }
            } else {
                (1.0, 0.0)
            }
        } else {
            (1.0, 0.0)
        };

        Self {
            gcn,
            sys_dim,
            calibration,
            target_range: (lo.min(hi), hi.max(lo)),
            training_losses: report.epoch_losses,
        }
    }

    /// The fitted calibration `(slope, intercept)` in log space.
    pub fn calibration(&self) -> (f64, f64) {
        self.calibration
    }

    /// Predicts exec-time in seconds for a plan under a system context
    /// (calibrated and clamped to the training label range). A context
    /// width differing from training asserts in debug builds and is
    /// padded/truncated in release.
    pub fn predict(&self, plan: &PhysicalPlan, sys: &SystemContext) -> f64 {
        from_log_space(self.predict_log(plan, sys))
    }

    /// Calibrated log-space prediction.
    pub fn predict_log(&self, plan: &PhysicalPlan, sys: &SystemContext) -> f64 {
        let mut sample = plan_to_tree_sample(plan, sys, 0.0);
        // Width skew between the context and the trained model is a
        // deployment bug: debug builds assert, release builds pad/truncate
        // to the trained width and keep serving.
        debug_assert_eq!(
            sample.sys_feats.len(),
            self.sys_dim,
            "system-feature width mismatch"
        );
        sample.sys_feats.resize(self.sys_dim, 0.0);
        let (a, b) = self.calibration;
        let raw = self.gcn.predict(&sample);
        (a * raw + b).clamp(self.target_range.0, self.target_range.1)
    }

    /// Uncalibrated log-space prediction (for calibration analyses).
    pub fn predict_log_raw(&self, plan: &PhysicalPlan, sys: &SystemContext) -> f64 {
        let sample = plan_to_tree_sample(plan, sys, 0.0);
        self.gcn.predict(&sample)
    }

    /// Total scalar parameters.
    pub fn n_parameters(&self) -> usize {
        self.gcn.n_parameters()
    }

    /// Approximate resident size in bytes.
    pub fn approx_size_bytes(&self) -> usize {
        self.gcn.approx_size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64, joins: usize) -> PhysicalPlan {
        let mut b = PlanBuilder::select().scan("t0", S3Format::Local, rows, 64.0);
        for j in 0..joins {
            b = b
                .scan("tj", S3Format::Local, rows / (j + 2) as f64, 48.0)
                .hash_join(0.1);
        }
        b.hash_aggregate(0.05).finish()
    }

    fn sys(speed: f64) -> SystemContext {
        SystemContext {
            features: vec![speed, 1.0],
        }
    }

    fn quick_config() -> GlobalModelConfig {
        GlobalModelConfig {
            hidden: 16,
            gcn_layers: 2,
            dropout: 0.0,
            epochs: 40,
            lr: 5e-3,
            batch_size: 16,
            seed: 3,
        }
    }

    #[test]
    fn conversion_preserves_structure() {
        let p = plan(1e5, 2);
        let s = plan_to_tree_sample(&p, &sys(1.0), 12.0);
        assert_eq!(s.node_feats.len(), p.node_count());
        assert_eq!(s.root, 0);
        assert!(s.validate().is_ok());
        assert_eq!(s.sys_feats.len(), 2 + GLOBAL_SYS_DIM_BASE);
        assert!((s.target - 12.0f64.ln_1p()).abs() < 1e-12);
        // Children counts must match the plan tree.
        let total_children: usize = s.children.iter().map(Vec::len).sum();
        assert_eq!(total_children, p.node_count() - 1);
    }

    #[test]
    fn node_feature_width_constant() {
        let p = plan(1e4, 1);
        let s = plan_to_tree_sample(&p, &sys(1.0), 1.0);
        assert!(s.node_feats.iter().all(|f| f.len() == NODE_FEATURE_DIM));
    }

    #[test]
    fn learns_size_ordering_across_instances() {
        // Targets scale with scan size and inversely with a "speed" system
        // feature — the transferable signal a zero-shot model must learn.
        let mut samples = Vec::new();
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            for &speed in &[1.0, 4.0] {
                let p = plan(rows, 1);
                let secs = rows / 2e4 / speed;
                samples.push(plan_to_tree_sample(&p, &sys(speed), secs));
            }
        }
        let model = GlobalModel::train(&samples, 2, &quick_config());
        assert!(model.training_losses.len() == 40);
        let first = model.training_losses[0];
        let last = *model.training_losses.last().unwrap();
        assert!(last < first, "loss should fall: {first} -> {last}");

        let small = model.predict(&plan(2e4, 1), &sys(1.0));
        let large = model.predict(&plan(5e5, 1), &sys(1.0));
        assert!(large > small, "small={small} large={large}");
        let fast = model.predict(&plan(4e5, 1), &sys(4.0));
        let slow = model.predict(&plan(4e5, 1), &sys(1.0));
        assert!(slow > fast, "fast={fast} slow={slow}");
    }

    #[test]
    fn predictions_clamped_to_training_range() {
        // Trained only on sub-second targets: even an enormous unseen plan
        // must not predict beyond the observed label range.
        let samples: Vec<TreeSample> = (1..=40)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e3, 0), &sys(1.0), 0.5))
            .collect();
        let model = GlobalModel::train(&samples, 2, &quick_config());
        let monster = plan(1e12, 2);
        let p = model.predict(&monster, &sys(1.0));
        assert!(p <= 0.5 + 1e-6, "clamp failed: {p}");
        let (a, _b) = model.calibration();
        assert!(a > 0.0);
    }

    #[test]
    fn predictions_nonnegative_seconds() {
        let samples: Vec<TreeSample> = (1..=30)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e3, 0), &sys(1.0), 0.001))
            .collect();
        let model = GlobalModel::train(&samples, 2, &quick_config());
        assert!(model.predict(&plan(5e3, 0), &sys(1.0)) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_sys_width_rejected() {
        let samples = vec![plan_to_tree_sample(&plan(1e4, 0), &sys(1.0), 1.0)];
        let model = GlobalModel::train(&samples, 2, &quick_config());
        model.predict(&plan(1e4, 0), &SystemContext::empty(5));
    }

    #[test]
    #[should_panic(expected = "training samples")]
    fn empty_training_rejected() {
        GlobalModel::train(&[], 2, &quick_config());
    }
}
