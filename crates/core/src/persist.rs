//! Model persistence.
//!
//! Redshift trains the global model offline on a fleet sweep and ships the
//! trained artefact to instances (eventually as a shared service, Fig. 9
//! discussion); local models are checkpointed so instance restarts don't
//! cold-start. This module provides the equivalent: JSON (de)serialization
//! of every trained model plus the exec-time cache, with a version tag so
//! stale artefacts fail loudly instead of predicting garbage.

use crate::cache::ExecTimeCache;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::path::Path;

/// Artefact format version; bump on breaking model-layout changes.
pub const PERSIST_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    version: u32,
    kind: String,
    payload: T,
}

fn save_impl<T: Serialize, W: Write>(kind: &str, value: &T, mut out: W) -> io::Result<()> {
    let env = Envelope {
        version: PERSIST_VERSION,
        kind: kind.to_string(),
        payload: value,
    };
    serde_json::to_writer(&mut out, &env).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn load_impl<T: DeserializeOwned, R: Read>(kind: &str, input: R) -> io::Result<T> {
    let env: Envelope<T> = serde_json::from_reader(input)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if env.version != PERSIST_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "artefact version {} != supported {PERSIST_VERSION}",
                env.version
            ),
        ));
    }
    if env.kind != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("artefact kind {:?} != expected {kind:?}", env.kind),
        ));
    }
    Ok(env.payload)
}

macro_rules! persistable {
    ($ty:ty, $kind:literal, $save:ident, $load:ident, $save_file:ident, $load_file:ident) => {
        /// Serializes the model to a writer (versioned JSON envelope).
        pub fn $save<W: Write>(model: &$ty, out: W) -> io::Result<()> {
            save_impl($kind, model, out)
        }

        /// Deserializes a model from a reader, validating version and kind.
        pub fn $load<R: Read>(input: R) -> io::Result<$ty> {
            load_impl($kind, input)
        }

        /// Saves to a file path.
        pub fn $save_file(model: &$ty, path: &Path) -> io::Result<()> {
            $save(model, std::io::BufWriter::new(std::fs::File::create(path)?))
        }

        /// Loads from a file path.
        pub fn $load_file(path: &Path) -> io::Result<$ty> {
            $load(std::io::BufReader::new(std::fs::File::open(path)?))
        }
    };
}

persistable!(
    GlobalModel,
    "stage-global-model",
    save_global,
    load_global,
    save_global_file,
    load_global_file
);
persistable!(
    LocalModel,
    "stage-local-model",
    save_local,
    load_local,
    save_local_file,
    load_local_file
);
persistable!(
    ExecTimeCache,
    "stage-exec-time-cache",
    save_cache,
    load_cache,
    save_cache_file,
    load_cache_file
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::global::{plan_to_tree_sample, GlobalModelConfig};
    use crate::local::LocalModelConfig;
    use crate::pool::{PoolConfig, TrainingPool};
    use crate::predictor::SystemContext;
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> stage_plan::PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    #[test]
    fn cache_round_trip_preserves_predictions() {
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        for k in 0..50u64 {
            cache.record(k, k as f64 * 0.1);
            cache.record(k, k as f64 * 0.12);
        }
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        let mut back = load_cache(buf.as_slice()).unwrap();
        for k in 0..50u64 {
            assert_eq!(cache.contains(k), back.contains(k));
            assert_eq!({ back.lookup(k) }, { cache.lookup(k) }, "key {k}");
        }
    }

    #[test]
    fn local_model_round_trip() {
        let mut pool = TrainingPool::new(PoolConfig::default());
        for i in 1..=120 {
            pool.add(vec![i as f64, 1.0], i as f64 * 0.05);
        }
        let mut local = LocalModel::new(LocalModelConfig {
            ensemble: stage_gbdt::EnsembleParams {
                n_members: 3,
                member: stage_gbdt::NgBoostParams {
                    n_estimators: 15,
                    ..stage_gbdt::NgBoostParams::default()
                },
                seed: 1,
            },
            ..LocalModelConfig::default()
        });
        local.retrain(&pool);
        let mut buf = Vec::new();
        save_local(&local, &mut buf).unwrap();
        let back = load_local(buf.as_slice()).unwrap();
        let probe = [55.0, 1.0];
        assert_eq!(local.predict(&probe), back.predict(&probe));
    }

    #[test]
    fn global_model_round_trip() {
        let sys = SystemContext::empty(2);
        let samples: Vec<_> = (1..=25)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e4), &sys, i as f64 * 0.2))
            .collect();
        let cfg = GlobalModelConfig {
            hidden: 8,
            gcn_layers: 1,
            epochs: 3,
            ..GlobalModelConfig::default()
        };
        let model = GlobalModel::train(&samples, 2, &cfg);
        let mut buf = Vec::new();
        save_global(&model, &mut buf).unwrap();
        let back = load_global(buf.as_slice()).unwrap();
        let probe = plan(3.3e5);
        assert_eq!(model.predict(&probe, &sys), back.predict(&probe, &sys));
    }

    #[test]
    fn wrong_kind_and_version_rejected() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        // Wrong kind.
        assert!(load_local(buf.as_slice()).is_err());
        // Wrong version.
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("\"version\":1", "\"version\":999");
        assert!(load_cache(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let dir = std::env::temp_dir().join("stage-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        save_cache_file(&cache, &path).unwrap();
        assert!(load_cache_file(&path).is_ok());
    }
}
