//! Model persistence.
//!
//! Redshift trains the global model offline on a fleet sweep and ships the
//! trained artefact to instances (eventually as a shared service, Fig. 9
//! discussion); local models are checkpointed so instance restarts don't
//! cold-start. This module provides the equivalent: JSON (de)serialization
//! of every trained model plus the exec-time cache, with a version tag so
//! stale artefacts fail loudly instead of predicting garbage.
//!
//! On-disk artefacts are additionally *framed*: a one-line header carrying
//! the format version, a CRC32 of the payload, and the payload length,
//! followed by the JSON envelope. Restore verifies the frame before any
//! deserialization runs, so disk rot, truncation, and stale formats surface
//! as a typed [`RestoreError`] — and the offending file is renamed to
//! `<name>.quarantine` so the next restore doesn't trip over it again. The
//! write path accepts an optional [`PersistFaults`] hook through which the
//! chaos layer injects partial writes, fsync failures, and read-side bit
//! flips without this module knowing anything about fault schedules.

use crate::cache::ExecTimeCache;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::stage::StageSnapshot;
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Artefact format version; bump on breaking model-layout changes.
/// v2: snapshots carry degraded-mode counters, files carry a CRC32 frame.
pub const PERSIST_VERSION: u32 = 2;

/// Hooks through which I/O faults are injected into the file persistence
/// path (the chaos layer implements this; production passes `None`). Every
/// method defaults to a no-op.
pub trait PersistFaults: Send + Sync {
    /// Called with the serialized payload before it is written; may mutate
    /// it (truncation = a partial write that still renamed into place) or
    /// fail the write outright.
    fn before_write(&self, path: &Path, bytes: &mut Vec<u8>) -> io::Result<()> {
        let _ = (path, bytes);
        Ok(())
    }

    /// The outcome of the fsync barrier (an `Err` models a failed fsync:
    /// the write aborts before the atomic rename).
    fn on_fsync(&self, path: &Path) -> io::Result<()> {
        let _ = path;
        Ok(())
    }

    /// Called with the raw bytes just read on restore; may mutate them
    /// (bit rot between checkpoint and restart).
    fn after_read(&self, path: &Path, bytes: &mut Vec<u8>) {
        let _ = (path, bytes);
    }
}

/// Why a file restore failed. Everything except [`RestoreError::Io`] means
/// the file existed but its contents cannot be trusted; those files are
/// renamed to `*.quarantine` before the error is returned.
#[derive(Debug)]
pub enum RestoreError {
    /// The file could not be read at all (includes not-found).
    Io(io::Error),
    /// The file does not start with a recognisable artefact frame header
    /// (pre-frame artefacts land here too — they predate v2).
    MissingHeader,
    /// The frame is a format version this build does not support.
    UnsupportedVersion {
        /// Version found in the frame header.
        found: u32,
        /// Version this build writes and reads.
        supported: u32,
    },
    /// The payload is shorter or longer than the frame header declares
    /// (classic kill-mid-write / partial-write damage).
    Truncated {
        /// Payload length the header declares.
        expected: usize,
        /// Payload length actually present.
        actual: usize,
    },
    /// The payload's CRC32 does not match the frame header (bit rot).
    ChecksumMismatch {
        /// Checksum the header declares.
        expected: u32,
        /// Checksum of the payload as read.
        actual: u32,
    },
    /// The frame verified but the JSON envelope did not deserialize or was
    /// of the wrong kind/version.
    Malformed {
        /// Human-readable cause.
        detail: String,
    },
}

impl RestoreError {
    /// Whether this is a benign missing-file error (cold start), as opposed
    /// to damage.
    pub fn is_not_found(&self) -> bool {
        matches!(self, RestoreError::Io(e) if e.kind() == io::ErrorKind::NotFound)
    }
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::Io(e) => write!(f, "cannot read artefact: {e}"),
            RestoreError::MissingHeader => write!(f, "missing or unrecognisable frame header"),
            RestoreError::UnsupportedVersion { found, supported } => {
                write!(f, "frame version {found} != supported {supported}")
            }
            RestoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "payload truncated: header declares {expected} bytes, found {actual}"
                )
            }
            RestoreError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "payload checksum {actual:08x} != declared {expected:08x}"
                )
            }
            RestoreError::Malformed { detail } => write!(f, "malformed envelope: {detail}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<io::Error> for RestoreError {
    fn from(e: io::Error) -> Self {
        RestoreError::Io(e)
    }
}

/// CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant). The implementation
/// lives in `stage-store` (table-driven, shared with the artefact store's
/// section checksums); the wire protocol and artefact frames keep importing
/// it through this path. Bit-identical to the bitwise version this module
/// shipped through PR 6 (pinned by tests in both crates).
pub use stage_store::crc32;

#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    version: u32,
    kind: String,
    payload: T,
}

fn save_impl<T: Serialize, W: Write>(kind: &str, value: &T, mut out: W) -> io::Result<()> {
    let env = Envelope {
        version: PERSIST_VERSION,
        kind: kind.to_string(),
        payload: value,
    };
    serde_json::to_writer(&mut out, &env).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn load_impl<T: DeserializeOwned, R: Read>(kind: &str, input: R) -> io::Result<T> {
    let env: Envelope<T> = serde_json::from_reader(input)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if env.version != PERSIST_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "artefact version {} != supported {PERSIST_VERSION}",
                env.version
            ),
        ));
    }
    if env.kind != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("artefact kind {:?} != expected {kind:?}", env.kind),
        ));
    }
    Ok(env.payload)
}

/// Monotonic counter distinguishing temp files written by one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temporary path a crash-safe write of `path` stages into: same
/// directory (so the final `rename` cannot cross filesystems), name
/// extended with process id and a per-process sequence number (so
/// concurrent checkpointers never collide).
fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.{}.tmp", std::process::id(), seq));
    path.with_file_name(name)
}

/// Crash-safe file write: streams through `write` into a temp file in the
/// target directory, fsyncs, then atomically `rename`s into place. A kill
/// at any instant leaves either the old artefact or the new one at `path`
/// — never a truncated hybrid (the failure mode of writing in place).
/// An injected fsync failure (`faults`) aborts before the rename, exactly
/// like a real one.
pub(crate) fn atomic_write<F>(
    path: &Path,
    write: F,
    faults: Option<&dyn PersistFaults>,
) -> io::Result<()>
where
    F: FnOnce(&mut io::BufWriter<std::fs::File>) -> io::Result<()>,
{
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut out)?;
        out.flush()?;
        if let Some(f) = faults {
            f.on_fsync(path)?;
        }
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original artefact at `path` is intact.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Renames a damaged artefact to `<name>.quarantine` (best effort) so the
/// next restore doesn't re-parse known-bad bytes; returns the new path when
/// the rename succeeded.
pub(crate) fn quarantine(path: &Path) -> Option<PathBuf> {
    let mut name = path.file_name()?.to_os_string();
    name.push(".quarantine");
    let dest = path.with_file_name(name);
    std::fs::rename(path, &dest).ok()?;
    Some(dest)
}

/// Serializes `value` and writes it to `path` inside a verified frame:
/// `stage-artefact v<N> crc32=<hex> len=<bytes>\n` + JSON envelope. The CRC
/// is computed over the *intended* payload before the fault hook runs, so
/// an injected partial write lands on disk with a mismatching frame — which
/// is exactly what restore must catch.
fn save_file_impl<T: Serialize>(
    kind: &str,
    value: &T,
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> io::Result<()> {
    let mut payload = Vec::new();
    save_impl(kind, value, &mut payload)?;
    let header = format!(
        "stage-artefact v{PERSIST_VERSION} crc32={:08x} len={}\n",
        crc32(&payload),
        payload.len()
    );
    if let Some(f) = faults {
        f.before_write(path, &mut payload)?;
    }
    atomic_write(
        path,
        |out| {
            out.write_all(header.as_bytes())?;
            out.write_all(&payload)
        },
        faults,
    )
}

/// Parses a framed artefact: header validation, CRC check, then envelope
/// deserialization.
fn parse_framed<T: DeserializeOwned>(kind: &str, bytes: &[u8]) -> Result<T, RestoreError> {
    let newline = bytes
        .iter()
        .position(|&b| b == b'\n')
        .ok_or(RestoreError::MissingHeader)?;
    let (header, rest) = bytes.split_at(newline);
    let payload = rest.get(1..).unwrap_or(&[]);
    let header = std::str::from_utf8(header).map_err(|_| RestoreError::MissingHeader)?;
    let mut parts = header.split_whitespace();
    if parts.next() != Some("stage-artefact") {
        return Err(RestoreError::MissingHeader);
    }
    let found = parts
        .next()
        .and_then(|p| p.strip_prefix('v'))
        .and_then(|p| p.parse::<u32>().ok())
        .ok_or(RestoreError::MissingHeader)?;
    if found != PERSIST_VERSION {
        return Err(RestoreError::UnsupportedVersion {
            found,
            supported: PERSIST_VERSION,
        });
    }
    let expected_crc = parts
        .next()
        .and_then(|p| p.strip_prefix("crc32="))
        .and_then(|p| u32::from_str_radix(p, 16).ok())
        .ok_or(RestoreError::MissingHeader)?;
    let expected_len = parts
        .next()
        .and_then(|p| p.strip_prefix("len="))
        .and_then(|p| p.parse::<usize>().ok())
        .ok_or(RestoreError::MissingHeader)?;
    if payload.len() != expected_len {
        return Err(RestoreError::Truncated {
            expected: expected_len,
            actual: payload.len(),
        });
    }
    let actual = crc32(payload);
    if actual != expected_crc {
        return Err(RestoreError::ChecksumMismatch {
            expected: expected_crc,
            actual,
        });
    }
    load_impl(kind, payload).map_err(|e| RestoreError::Malformed {
        detail: e.to_string(),
    })
}

/// Reads and verifies a framed artefact. Missing files are
/// `RestoreError::Io` (not-found, benign); any damage (no/garbled header,
/// wrong version, truncation, checksum mismatch, malformed envelope) gets
/// the file renamed to `*.quarantine` before the typed error returns, so a
/// warm restart comes up cold on that shard instead of crashing — and the
/// damaged bytes are preserved for forensics rather than re-tripping every
/// restart.
fn load_file_impl<T: DeserializeOwned>(
    kind: &str,
    path: &Path,
    faults: Option<&dyn PersistFaults>,
) -> Result<T, RestoreError> {
    let mut bytes = std::fs::read(path)?;
    if let Some(f) = faults {
        f.after_read(path, &mut bytes);
    }
    let result = parse_framed(kind, &bytes);
    if result.is_err() {
        let _ = quarantine(path);
    }
    result
}

macro_rules! persistable {
    ($ty:ty, $kind:literal, $save:ident, $load:ident, $save_file:ident, $load_file:ident,
     $save_file_with:ident, $load_file_with:ident) => {
        /// Serializes the model to a writer (versioned JSON envelope).
        pub fn $save<W: Write>(model: &$ty, out: W) -> io::Result<()> {
            save_impl($kind, model, out)
        }

        /// Deserializes a model from a reader, validating version and kind.
        pub fn $load<R: Read>(input: R) -> io::Result<$ty> {
            load_impl($kind, input)
        }

        /// Saves to a file path crash-safely (CRC32 frame + temp file +
        /// atomic rename; a kill mid-write never corrupts an existing
        /// artefact).
        pub fn $save_file(model: &$ty, path: &Path) -> io::Result<()> {
            save_file_impl($kind, model, path, None)
        }

        /// Loads and verifies a framed artefact from a file path; damaged
        /// files are quarantined (see [`RestoreError`]).
        pub fn $load_file(path: &Path) -> Result<$ty, RestoreError> {
            load_file_impl($kind, path, None)
        }

        /// The file-save path with a fault-injection hook (chaos testing).
        pub fn $save_file_with(
            model: &$ty,
            path: &Path,
            faults: Option<&dyn PersistFaults>,
        ) -> io::Result<()> {
            save_file_impl($kind, model, path, faults)
        }

        /// The file-load path with a fault-injection hook (chaos testing).
        pub fn $load_file_with(
            path: &Path,
            faults: Option<&dyn PersistFaults>,
        ) -> Result<$ty, RestoreError> {
            load_file_impl($kind, path, faults)
        }
    };
}

persistable!(
    GlobalModel,
    "stage-global-model",
    save_global,
    load_global,
    save_global_file,
    load_global_file,
    save_global_file_with,
    load_global_file_with
);
persistable!(
    LocalModel,
    "stage-local-model",
    save_local,
    load_local,
    save_local_file,
    load_local_file,
    save_local_file_with,
    load_local_file_with
);
persistable!(
    ExecTimeCache,
    "stage-exec-time-cache",
    save_cache,
    load_cache,
    save_cache_file,
    load_cache_file,
    save_cache_file_with,
    load_cache_file_with
);
persistable!(
    StageSnapshot,
    "stage-predictor-snapshot",
    save_stage,
    load_stage,
    save_stage_file,
    load_stage_file,
    save_stage_file_with,
    load_stage_file_with
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::global::{plan_to_tree_sample, GlobalModelConfig};
    use crate::local::LocalModelConfig;
    use crate::pool::{PoolConfig, TrainingPool};
    use crate::predictor::SystemContext;
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> stage_plan::PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    #[test]
    fn cache_round_trip_preserves_predictions() {
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        for k in 0..50u64 {
            cache.record(k, k as f64 * 0.1);
            cache.record(k, k as f64 * 0.12);
        }
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        let mut back = load_cache(buf.as_slice()).unwrap();
        for k in 0..50u64 {
            assert_eq!(cache.contains(k), back.contains(k));
            assert_eq!({ back.lookup(k) }, { cache.lookup(k) }, "key {k}");
        }
    }

    #[test]
    fn local_model_round_trip() {
        let mut pool = TrainingPool::new(PoolConfig::default());
        for i in 1..=120 {
            pool.add(vec![i as f64, 1.0], i as f64 * 0.05);
        }
        let mut local = LocalModel::new(LocalModelConfig {
            ensemble: stage_gbdt::EnsembleParams {
                n_members: 3,
                member: stage_gbdt::NgBoostParams {
                    n_estimators: 15,
                    ..stage_gbdt::NgBoostParams::default()
                },
                seed: 1,
            },
            ..LocalModelConfig::default()
        });
        local.retrain(&pool);
        let mut buf = Vec::new();
        save_local(&local, &mut buf).unwrap();
        let back = load_local(buf.as_slice()).unwrap();
        let probe = [55.0, 1.0];
        assert_eq!(local.predict(&probe), back.predict(&probe));
    }

    #[test]
    fn global_model_round_trip() {
        let sys = SystemContext::empty(2);
        let samples: Vec<_> = (1..=25)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e4), &sys, i as f64 * 0.2))
            .collect();
        let cfg = GlobalModelConfig {
            hidden: 8,
            gcn_layers: 1,
            epochs: 3,
            ..GlobalModelConfig::default()
        };
        let model = GlobalModel::train(&samples, 2, &cfg);
        let mut buf = Vec::new();
        save_global(&model, &mut buf).unwrap();
        let back = load_global(buf.as_slice()).unwrap();
        let probe = plan(3.3e5);
        assert_eq!(model.predict(&probe, &sys), back.predict(&probe, &sys));
    }

    #[test]
    fn wrong_kind_and_version_rejected() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        // Wrong kind.
        assert!(load_local(buf.as_slice()).is_err());
        // Wrong version.
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("\"version\":2", "\"version\":999");
        assert!(load_cache(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let dir = std::env::temp_dir().join("stage-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        save_cache_file(&cache, &path).unwrap();
        assert!(load_cache_file(&path).is_ok());
    }

    #[test]
    fn stage_snapshot_round_trip_resumes_warm() {
        use crate::predictor::{ExecTimePredictor, PredictionSource};
        use crate::stage::{StageConfig, StagePredictor};

        let mut s = StagePredictor::new(StageConfig::default());
        s.set_instance_salt(7);
        let sys = SystemContext::empty(2);
        for i in 1..=30 {
            let q = plan(i as f64 * 1e4);
            s.predict(&q, &sys);
            s.observe(&q, &sys, i as f64 * 0.1);
        }
        let mut buf = Vec::new();
        save_stage(&s.snapshot(), &mut buf).unwrap();
        let mut back = StagePredictor::from_snapshot(load_stage(buf.as_slice()).unwrap());

        // Counters, pool contents, and salt survive.
        assert_eq!(back.stats(), s.stats());
        assert_eq!(back.pool().len(), s.pool().len());
        assert_eq!(back.cache().len(), s.cache().len());
        assert_eq!(back.local().instance_salt(), 7);
        // A query cached before the snapshot is a warm cache hit after.
        let p = back.predict(&plan(5e4), &sys);
        assert_eq!(p.source, PredictionSource::Cache);
        // The restored predictor keeps learning (same retrain cadence).
        back.observe(&plan(9.9e5), &sys, 3.0);
        assert_eq!(back.pool().len(), s.pool().len() + 1);
    }

    #[test]
    fn save_file_is_atomic_under_simulated_crash() {
        let dir = std::env::temp_dir().join("stage-persist-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        // A valid artefact exists.
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        cache.record(1, 2.0);
        save_cache_file(&cache, &path).unwrap();

        // A checkpoint killed mid-write leaves only a partial *temp* file
        // (this is exactly the on-disk state after a kill -9: `rename`
        // never ran). The artefact itself must stay loadable.
        let tmp = super::tmp_sibling(&path);
        std::fs::write(&tmp, b"{\"version\":1,\"kind\":\"stage-exec-ti").unwrap();
        let loaded = load_cache_file(&path).unwrap();
        assert!(loaded.contains(1));

        // A completed save over the existing artefact replaces it whole.
        let mut newer = ExecTimeCache::new(CacheConfig::default());
        newer.record(2, 4.0);
        save_cache_file(&newer, &path).unwrap();
        let loaded = load_cache_file(&path).unwrap();
        assert!(loaded.contains(2) && !loaded.contains(1));

        // Successful saves leave no temp droppings behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.ends_with(".tmp") && name != tmp.file_name().unwrap().to_string_lossy()
            })
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn failed_save_preserves_existing_artefact() {
        let dir = std::env::temp_dir().join("stage-persist-fail-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        cache.record(9, 1.5);
        save_cache_file(&cache, &path).unwrap();

        // A save whose write step errors must leave the artefact untouched
        // and clean up its temp file.
        let err = super::atomic_write(&path, |_w| Err(io::Error::other("simulated crash")), None);
        assert!(err.is_err());
        assert!(load_cache_file(&path).unwrap().contains(9));
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0, "temp file not cleaned up after failed save");
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check values (zlib/PNG polynomial).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn fresh_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("stage-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_cache() -> ExecTimeCache {
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        cache.record(1, 2.0);
        cache
    }

    fn quarantine_path(path: &Path) -> std::path::PathBuf {
        let mut name = path.file_name().unwrap().to_os_string();
        name.push(".quarantine");
        path.with_file_name(name)
    }

    #[test]
    fn truncated_file_is_typed_error_and_quarantined() {
        let dir = fresh_dir("truncated");
        let path = dir.join("cache.json");
        save_cache_file(&sample_cache(), &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
        let err = load_cache_file(&path).unwrap_err();
        assert!(matches!(err, RestoreError::Truncated { .. }), "{err}");
        assert!(!path.exists(), "damaged file must be moved aside");
        assert!(quarantine_path(&path).exists(), "quarantine file missing");
        // The quarantined slot is now a benign cold start.
        assert!(load_cache_file(&path).unwrap_err().is_not_found());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_checksum_mismatch_and_quarantined() {
        let dir = fresh_dir("bitflip");
        let path = dir.join("cache.json");
        save_cache_file(&sample_cache(), &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x04; // flip one payload bit
        std::fs::write(&path, &bytes).unwrap();
        let err = load_cache_file(&path).unwrap_err();
        assert!(
            matches!(err, RestoreError::ChecksumMismatch { .. }),
            "{err}"
        );
        assert!(quarantine_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_version_and_headerless_files_are_typed_and_quarantined() {
        let dir = fresh_dir("version");
        let path = dir.join("cache.json");
        save_cache_file(&sample_cache(), &path).unwrap();
        let framed = String::from_utf8(std::fs::read(&path).unwrap()).unwrap();
        std::fs::write(
            &path,
            framed.replacen("stage-artefact v2", "stage-artefact v1", 1),
        )
        .unwrap();
        let err = load_cache_file(&path).unwrap_err();
        assert!(
            matches!(
                err,
                RestoreError::UnsupportedVersion {
                    found: 1,
                    supported: 2
                }
            ),
            "{err}"
        );
        assert!(quarantine_path(&path).exists());

        // A pre-frame (v1-era) artefact: bare JSON, no header line.
        let bare = dir.join("old.json");
        let mut buf = Vec::new();
        save_cache(&sample_cache(), &mut buf).unwrap();
        std::fs::write(&bare, &buf).unwrap();
        let err = load_cache_file(&bare).unwrap_err();
        assert!(matches!(err, RestoreError::MissingHeader), "{err}");
        assert!(quarantine_path(&bare).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_envelope_behind_valid_frame_is_malformed() {
        let dir = fresh_dir("malformed");
        let path = dir.join("cache.json");
        // A frame whose CRC and length match garbage payload: the frame
        // verifies, the envelope does not.
        let payload = b"{\"not\": \"an envelope\"}";
        let header = format!(
            "stage-artefact v{PERSIST_VERSION} crc32={:08x} len={}\n",
            crc32(payload),
            payload.len()
        );
        let mut bytes = header.into_bytes();
        bytes.extend_from_slice(payload);
        std::fs::write(&path, &bytes).unwrap();
        let err = load_cache_file(&path).unwrap_err();
        assert!(matches!(err, RestoreError::Malformed { .. }), "{err}");
        assert!(quarantine_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A scripted fault hook for exercising the injection points directly.
    struct ScriptedFaults {
        truncate_to: Option<usize>,
        fail_write: bool,
        fail_fsync: bool,
        flip_read_bit: bool,
    }

    impl ScriptedFaults {
        fn none() -> Self {
            Self {
                truncate_to: None,
                fail_write: false,
                fail_fsync: false,
                flip_read_bit: false,
            }
        }
    }

    impl PersistFaults for ScriptedFaults {
        fn before_write(&self, _path: &Path, bytes: &mut Vec<u8>) -> io::Result<()> {
            if self.fail_write {
                return Err(io::Error::other("scripted write failure"));
            }
            if let Some(n) = self.truncate_to {
                bytes.truncate(n);
            }
            Ok(())
        }

        fn on_fsync(&self, _path: &Path) -> io::Result<()> {
            if self.fail_fsync {
                return Err(io::Error::other("scripted fsync failure"));
            }
            Ok(())
        }

        fn after_read(&self, _path: &Path, bytes: &mut Vec<u8>) {
            if self.flip_read_bit {
                if let Some(last) = bytes.last_mut() {
                    *last ^= 0x01;
                }
            }
        }
    }

    #[test]
    fn injected_partial_write_is_caught_on_restore() {
        let dir = fresh_dir("hook-partial");
        let path = dir.join("cache.json");
        let faults = ScriptedFaults {
            truncate_to: Some(12),
            ..ScriptedFaults::none()
        };
        // The save "succeeds" (the bytes hit disk and renamed into place)
        // but the payload is short — restore must refuse it.
        save_cache_file_with(&sample_cache(), &path, Some(&faults)).unwrap();
        let err = load_cache_file(&path).unwrap_err();
        assert!(matches!(err, RestoreError::Truncated { .. }), "{err}");
        assert!(quarantine_path(&path).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_and_fsync_failures_preserve_old_artefact() {
        let dir = fresh_dir("hook-fsync");
        let path = dir.join("cache.json");
        save_cache_file(&sample_cache(), &path).unwrap();
        for faults in [
            ScriptedFaults {
                fail_write: true,
                ..ScriptedFaults::none()
            },
            ScriptedFaults {
                fail_fsync: true,
                ..ScriptedFaults::none()
            },
        ] {
            let newer = ExecTimeCache::new(CacheConfig::default());
            assert!(save_cache_file_with(&newer, &path, Some(&faults)).is_err());
            // The original artefact is intact and loadable.
            assert!(load_cache_file(&path).unwrap().contains(1));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_bit_flip_is_checksum_mismatch() {
        let dir = fresh_dir("hook-read");
        let path = dir.join("cache.json");
        save_cache_file(&sample_cache(), &path).unwrap();
        let faults = ScriptedFaults {
            flip_read_bit: true,
            ..ScriptedFaults::none()
        };
        let err = load_cache_file_with(&path, Some(&faults)).unwrap_err();
        assert!(
            matches!(err, RestoreError::ChecksumMismatch { .. }),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
