//! Model persistence.
//!
//! Redshift trains the global model offline on a fleet sweep and ships the
//! trained artefact to instances (eventually as a shared service, Fig. 9
//! discussion); local models are checkpointed so instance restarts don't
//! cold-start. This module provides the equivalent: JSON (de)serialization
//! of every trained model plus the exec-time cache, with a version tag so
//! stale artefacts fail loudly instead of predicting garbage.

use crate::cache::ExecTimeCache;
use crate::global::GlobalModel;
use crate::local::LocalModel;
use crate::stage::StageSnapshot;
use serde::{de::DeserializeOwned, Deserialize, Serialize};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Artefact format version; bump on breaking model-layout changes.
pub const PERSIST_VERSION: u32 = 1;

#[derive(Serialize, Deserialize)]
struct Envelope<T> {
    version: u32,
    kind: String,
    payload: T,
}

fn save_impl<T: Serialize, W: Write>(kind: &str, value: &T, mut out: W) -> io::Result<()> {
    let env = Envelope {
        version: PERSIST_VERSION,
        kind: kind.to_string(),
        payload: value,
    };
    serde_json::to_writer(&mut out, &env).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

fn load_impl<T: DeserializeOwned, R: Read>(kind: &str, input: R) -> io::Result<T> {
    let env: Envelope<T> = serde_json::from_reader(input)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if env.version != PERSIST_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "artefact version {} != supported {PERSIST_VERSION}",
                env.version
            ),
        ));
    }
    if env.kind != kind {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("artefact kind {:?} != expected {kind:?}", env.kind),
        ));
    }
    Ok(env.payload)
}

/// Monotonic counter distinguishing temp files written by one process.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// The temporary path a crash-safe write of `path` stages into: same
/// directory (so the final `rename` cannot cross filesystems), name
/// extended with process id and a per-process sequence number (so
/// concurrent checkpointers never collide).
fn tmp_sibling(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.{}.tmp", std::process::id(), seq));
    path.with_file_name(name)
}

/// Crash-safe file write: streams through `write` into a temp file in the
/// target directory, fsyncs, then atomically `rename`s into place. A kill
/// at any instant leaves either the old artefact or the new one at `path`
/// — never a truncated hybrid (the failure mode of writing in place).
fn atomic_write<F>(path: &Path, write: F) -> io::Result<()>
where
    F: FnOnce(&mut io::BufWriter<std::fs::File>) -> io::Result<()>,
{
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
        write(&mut out)?;
        out.flush()?;
        out.get_ref().sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original artefact at `path` is intact.
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

macro_rules! persistable {
    ($ty:ty, $kind:literal, $save:ident, $load:ident, $save_file:ident, $load_file:ident) => {
        /// Serializes the model to a writer (versioned JSON envelope).
        pub fn $save<W: Write>(model: &$ty, out: W) -> io::Result<()> {
            save_impl($kind, model, out)
        }

        /// Deserializes a model from a reader, validating version and kind.
        pub fn $load<R: Read>(input: R) -> io::Result<$ty> {
            load_impl($kind, input)
        }

        /// Saves to a file path crash-safely (temp file + atomic rename;
        /// a kill mid-write never corrupts an existing artefact).
        pub fn $save_file(model: &$ty, path: &Path) -> io::Result<()> {
            atomic_write(path, |out| $save(model, out))
        }

        /// Loads from a file path.
        pub fn $load_file(path: &Path) -> io::Result<$ty> {
            $load(std::io::BufReader::new(std::fs::File::open(path)?))
        }
    };
}

persistable!(
    GlobalModel,
    "stage-global-model",
    save_global,
    load_global,
    save_global_file,
    load_global_file
);
persistable!(
    LocalModel,
    "stage-local-model",
    save_local,
    load_local,
    save_local_file,
    load_local_file
);
persistable!(
    ExecTimeCache,
    "stage-exec-time-cache",
    save_cache,
    load_cache,
    save_cache_file,
    load_cache_file
);
persistable!(
    StageSnapshot,
    "stage-predictor-snapshot",
    save_stage,
    load_stage,
    save_stage_file,
    load_stage_file
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::global::{plan_to_tree_sample, GlobalModelConfig};
    use crate::local::LocalModelConfig;
    use crate::pool::{PoolConfig, TrainingPool};
    use crate::predictor::SystemContext;
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> stage_plan::PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    #[test]
    fn cache_round_trip_preserves_predictions() {
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        for k in 0..50u64 {
            cache.record(k, k as f64 * 0.1);
            cache.record(k, k as f64 * 0.12);
        }
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        let mut back = load_cache(buf.as_slice()).unwrap();
        for k in 0..50u64 {
            assert_eq!(cache.contains(k), back.contains(k));
            assert_eq!({ back.lookup(k) }, { cache.lookup(k) }, "key {k}");
        }
    }

    #[test]
    fn local_model_round_trip() {
        let mut pool = TrainingPool::new(PoolConfig::default());
        for i in 1..=120 {
            pool.add(vec![i as f64, 1.0], i as f64 * 0.05);
        }
        let mut local = LocalModel::new(LocalModelConfig {
            ensemble: stage_gbdt::EnsembleParams {
                n_members: 3,
                member: stage_gbdt::NgBoostParams {
                    n_estimators: 15,
                    ..stage_gbdt::NgBoostParams::default()
                },
                seed: 1,
            },
            ..LocalModelConfig::default()
        });
        local.retrain(&pool);
        let mut buf = Vec::new();
        save_local(&local, &mut buf).unwrap();
        let back = load_local(buf.as_slice()).unwrap();
        let probe = [55.0, 1.0];
        assert_eq!(local.predict(&probe), back.predict(&probe));
    }

    #[test]
    fn global_model_round_trip() {
        let sys = SystemContext::empty(2);
        let samples: Vec<_> = (1..=25)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e4), &sys, i as f64 * 0.2))
            .collect();
        let cfg = GlobalModelConfig {
            hidden: 8,
            gcn_layers: 1,
            epochs: 3,
            ..GlobalModelConfig::default()
        };
        let model = GlobalModel::train(&samples, 2, &cfg);
        let mut buf = Vec::new();
        save_global(&model, &mut buf).unwrap();
        let back = load_global(buf.as_slice()).unwrap();
        let probe = plan(3.3e5);
        assert_eq!(model.predict(&probe, &sys), back.predict(&probe, &sys));
    }

    #[test]
    fn wrong_kind_and_version_rejected() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let mut buf = Vec::new();
        save_cache(&cache, &mut buf).unwrap();
        // Wrong kind.
        assert!(load_local(buf.as_slice()).is_err());
        // Wrong version.
        let text = String::from_utf8(buf)
            .unwrap()
            .replace("\"version\":1", "\"version\":999");
        assert!(load_cache(text.as_bytes()).is_err());
    }

    #[test]
    fn file_round_trip() {
        let cache = ExecTimeCache::new(CacheConfig::default());
        let dir = std::env::temp_dir().join("stage-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        save_cache_file(&cache, &path).unwrap();
        assert!(load_cache_file(&path).is_ok());
    }

    #[test]
    fn stage_snapshot_round_trip_resumes_warm() {
        use crate::predictor::{ExecTimePredictor, PredictionSource};
        use crate::stage::{StageConfig, StagePredictor};

        let mut s = StagePredictor::new(StageConfig::default());
        s.set_instance_salt(7);
        let sys = SystemContext::empty(2);
        for i in 1..=30 {
            let q = plan(i as f64 * 1e4);
            s.predict(&q, &sys);
            s.observe(&q, &sys, i as f64 * 0.1);
        }
        let mut buf = Vec::new();
        save_stage(&s.snapshot(), &mut buf).unwrap();
        let mut back = StagePredictor::from_snapshot(load_stage(buf.as_slice()).unwrap());

        // Counters, pool contents, and salt survive.
        assert_eq!(back.stats(), s.stats());
        assert_eq!(back.pool().len(), s.pool().len());
        assert_eq!(back.cache().len(), s.cache().len());
        assert_eq!(back.local().instance_salt(), 7);
        // A query cached before the snapshot is a warm cache hit after.
        let p = back.predict(&plan(5e4), &sys);
        assert_eq!(p.source, PredictionSource::Cache);
        // The restored predictor keeps learning (same retrain cadence).
        back.observe(&plan(9.9e5), &sys, 3.0);
        assert_eq!(back.pool().len(), s.pool().len() + 1);
    }

    #[test]
    fn save_file_is_atomic_under_simulated_crash() {
        let dir = std::env::temp_dir().join("stage-persist-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");

        // A valid artefact exists.
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        cache.record(1, 2.0);
        save_cache_file(&cache, &path).unwrap();

        // A checkpoint killed mid-write leaves only a partial *temp* file
        // (this is exactly the on-disk state after a kill -9: `rename`
        // never ran). The artefact itself must stay loadable.
        let tmp = super::tmp_sibling(&path);
        std::fs::write(&tmp, b"{\"version\":1,\"kind\":\"stage-exec-ti").unwrap();
        let loaded = load_cache_file(&path).unwrap();
        assert!(loaded.contains(1));

        // A completed save over the existing artefact replaces it whole.
        let mut newer = ExecTimeCache::new(CacheConfig::default());
        newer.record(2, 4.0);
        save_cache_file(&newer, &path).unwrap();
        let loaded = load_cache_file(&path).unwrap();
        assert!(loaded.contains(2) && !loaded.contains(1));

        // Successful saves leave no temp droppings behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.ends_with(".tmp") && name != tmp.file_name().unwrap().to_string_lossy()
            })
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_file(&tmp);
    }

    #[test]
    fn failed_save_preserves_existing_artefact() {
        let dir = std::env::temp_dir().join("stage-persist-fail-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cache.json");
        let mut cache = ExecTimeCache::new(CacheConfig::default());
        cache.record(9, 1.5);
        save_cache_file(&cache, &path).unwrap();

        // A save whose write step errors must leave the artefact untouched
        // and clean up its temp file.
        let err = super::atomic_write(&path, |_w| Err(io::Error::other("simulated crash")));
        assert!(err.is_err());
        assert!(load_cache_file(&path).unwrap().contains(9));
        let tmps = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .count();
        assert_eq!(tmps, 0, "temp file not cleaned up after failed save");
    }
}
