//! Ordered lock wrappers enforcing the workspace lock hierarchy at runtime.
//!
//! The workspace declares one total order over its named locks:
//!
//! ```text
//! registry (0)  →  shard (1)  →  queue (2)  →  session (3)
//! ```
//!
//! A thread may only acquire locks in non-decreasing rank order; taking a
//! lower-ranked lock while a higher-ranked one is held is the classic
//! deadlock recipe (thread A holds queue wanting shard, thread B holds
//! shard wanting queue). [`OrderedMutex`] and [`OrderedRwLock`] wrap the
//! std primitives and, **in debug builds**, keep a per-thread stack of held
//! ranks and panic — naming both locks — the instant an out-of-order
//! acquisition happens, whether or not it would have deadlocked this run.
//! Release builds compile the bookkeeping out entirely; the wrappers add
//! zero overhead there.
//!
//! `stage-lint`'s `lock-order` rule checks the same order lexically over
//! nested guard scopes, so both layers agree on the single source of truth:
//! the rank constants below. Poisoning is deliberately swallowed
//! (`PoisonError::into_inner`): every guarded value in this workspace is a
//! predictor/bookkeeping structure whose partially-updated state is still
//! structurally valid (at worst a stale model), and a panic-freedom lint
//! guards the paths that mutate them.

use std::cell::RefCell;
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

/// A lock's place in the declared total order. Lower ranks must be
/// acquired first; equal ranks may be held together (peer shards).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockRank {
    /// Position in the total order (lower acquires first).
    pub rank: u8,
    /// Human-readable lock name, used in violation panics and diagnostics.
    pub name: &'static str,
}

/// The shard-table lock of a serving registry.
pub const RANK_REGISTRY: LockRank = LockRank {
    rank: 0,
    name: "registry",
};
/// One instance's predictor shard.
pub const RANK_SHARD: LockRank = LockRank {
    rank: 1,
    name: "shard",
};
/// A worker's bounded admission queue.
pub const RANK_QUEUE: LockRank = LockRank {
    rank: 2,
    name: "queue",
};
/// Per-process session bookkeeping (connection tables, checkpoint gate).
pub const RANK_SESSION: LockRank = LockRank {
    rank: 3,
    name: "session",
};

/// Human-readable rendering of the declared order, for panic messages and
/// docs.
pub const DECLARED_ORDER: &str = "registry(0) -> shard(1) -> queue(2) -> session(3)";

thread_local! {
    /// Ranks of locks currently held by this thread (debug builds only).
    static HELD: RefCell<Vec<LockRank>> = const { RefCell::new(Vec::new()) };
}

/// Records an acquisition, panicking on an out-of-order one (debug only).
fn track_acquire(rank: LockRank) {
    if cfg!(debug_assertions) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(worst) = held.iter().max_by_key(|r| r.rank) {
                // lint:allow(no-panic): this panic IS the debug-only lock-order enforcement; release builds skip the whole branch
                assert!(
                    worst.rank <= rank.rank,
                    "lock order violation: acquiring \"{}\" (rank {}) while holding \"{}\" \
                     (rank {}); declared order is {DECLARED_ORDER}",
                    rank.name,
                    rank.rank,
                    worst.name,
                    worst.rank,
                );
            }
            held.push(rank);
        });
    }
}

/// Forgets one held entry of `rank` (debug only).
fn track_release(rank: LockRank) {
    if cfg!(debug_assertions) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|r| *r == rank) {
                held.remove(pos);
            }
        });
    }
}

/// Ranks currently held by this thread (debug builds; empty in release).
/// Exposed for tests and diagnostics.
pub fn held_ranks() -> Vec<LockRank> {
    HELD.with(|held| held.borrow().clone())
}

/// A [`Mutex`] that participates in the declared lock order.
pub struct OrderedMutex<T> {
    rank: LockRank,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex at the given rank.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the mutex, enforcing rank order in debug builds. Poisoning
    /// is swallowed (see the module docs).
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        track_acquire(self.rank);
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        OrderedMutexGuard {
            inner: Some(inner),
            rank: self.rank,
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`OrderedMutex::lock`]. The `Option` is `Some` for the
/// guard's whole external lifetime; it is only vacated internally while the
/// guard is parked in a [`Condvar`] wait (the lock really is released
/// there, so the held-rank entry is dropped too).
pub struct OrderedMutexGuard<'a, T> {
    inner: Option<MutexGuard<'a, T>>,
    rank: LockRank,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match &self.inner {
            Some(g) => g,
            // lint:allow(no-panic): the Option is vacated only inside wait(), which consumes the guard
            None => unreachable!("guard vacated outside a condvar wait"),
        }
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            // lint:allow(no-panic): the Option is vacated only inside wait(), which consumes the guard
            None => unreachable!("guard vacated outside a condvar wait"),
        }
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            track_release(self.rank);
        }
    }
}

/// Releases `guard` into `cv.wait`, restoring the rank bookkeeping when the
/// thread wakes and re-acquires. Use exactly like
/// `guard = sync::wait(&cv, guard)`.
pub fn wait<'a, T>(cv: &Condvar, mut guard: OrderedMutexGuard<'a, T>) -> OrderedMutexGuard<'a, T> {
    let rank = guard.rank;
    let Some(inner) = guard.inner.take() else {
        // lint:allow(no-panic): the Option is vacated only inside wait(), which consumes the guard
        unreachable!("guard vacated outside a condvar wait");
    };
    track_release(rank);
    let inner = cv.wait(inner).unwrap_or_else(PoisonError::into_inner);
    track_acquire(rank);
    OrderedMutexGuard {
        inner: Some(inner),
        rank,
    }
}

/// Timed variant of [`wait`].
pub fn wait_timeout<'a, T>(
    cv: &Condvar,
    mut guard: OrderedMutexGuard<'a, T>,
    dur: Duration,
) -> (OrderedMutexGuard<'a, T>, WaitTimeoutResult) {
    let rank = guard.rank;
    let Some(inner) = guard.inner.take() else {
        // lint:allow(no-panic): the Option is vacated only inside wait(), which consumes the guard
        unreachable!("guard vacated outside a condvar wait");
    };
    track_release(rank);
    let (inner, timeout) = cv
        .wait_timeout(inner, dur)
        .unwrap_or_else(PoisonError::into_inner);
    track_acquire(rank);
    (
        OrderedMutexGuard {
            inner: Some(inner),
            rank,
        },
        timeout,
    )
}

/// An [`RwLock`] that participates in the declared lock order. Read and
/// write acquisitions both count against the order (a reader can deadlock a
/// writer just as well).
pub struct OrderedRwLock<T> {
    rank: LockRank,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` in an rwlock at the given rank.
    pub const fn new(rank: LockRank, value: T) -> Self {
        Self {
            rank,
            inner: RwLock::new(value),
        }
    }

    /// Acquires shared read access, enforcing rank order in debug builds.
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        track_acquire(self.rank);
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        OrderedRwLockReadGuard {
            inner,
            rank: self.rank,
        }
    }

    /// Acquires exclusive write access, enforcing rank order in debug
    /// builds.
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        track_acquire(self.rank);
        let inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        OrderedRwLockWriteGuard {
            inner,
            rank: self.rank,
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("rank", &self.rank)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`OrderedRwLock::read`].
pub struct OrderedRwLockReadGuard<'a, T> {
    inner: RwLockReadGuard<'a, T>,
    rank: LockRank,
}

impl<T> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> Drop for OrderedRwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        track_release(self.rank);
    }
}

/// Guard returned by [`OrderedRwLock::write`].
pub struct OrderedRwLockWriteGuard<'a, T> {
    inner: RwLockWriteGuard<'a, T>,
    rank: LockRank,
}

impl<T> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedRwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        track_release(self.rank);
    }
}

// The wrappers must be as thread-capable as the primitives they replace.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<OrderedMutex<Vec<u8>>>();
    assert_send_sync::<OrderedRwLock<Vec<u8>>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn in_order_nesting_is_fine() {
        let registry = OrderedRwLock::new(RANK_REGISTRY, vec![1u32]);
        let shard = OrderedRwLock::new(RANK_SHARD, 7u32);
        let queue = OrderedMutex::new(RANK_QUEUE, Vec::<u32>::new());
        let r = registry.read();
        let mut s = shard.write();
        *s += r[0];
        let mut q = queue.lock();
        q.push(*s);
        assert_eq!(q.as_slice(), &[8]);
        drop(q);
        drop(s);
        drop(r);
        assert!(held_ranks().is_empty(), "all held entries released");
    }

    #[test]
    fn equal_ranks_may_be_held_together() {
        let a = OrderedRwLock::new(RANK_SHARD, 1u32);
        let b = OrderedRwLock::new(RANK_SHARD, 2u32);
        let ga = a.read();
        let gb = b.read();
        assert_eq!(*ga + *gb, 3);
    }

    #[test]
    fn sequential_reacquisition_after_release_is_fine() {
        let shard = OrderedRwLock::new(RANK_SHARD, 0u32);
        let registry = OrderedRwLock::new(RANK_REGISTRY, 0u32);
        {
            let _s = shard.write();
        }
        // The shard guard is gone; going back down to registry is legal.
        let _r = registry.read();
    }

    #[cfg(debug_assertions)]
    #[test]
    fn inverted_acquisition_panics_with_both_lock_names() {
        let queue = Arc::new(OrderedMutex::new(RANK_QUEUE, ()));
        let shard = Arc::new(OrderedRwLock::new(RANK_SHARD, ()));
        let handle = std::thread::spawn(move || {
            let _q = queue.lock();
            let _s = shard.write(); // queue(2) held while acquiring shard(1): boom
        });
        let panic = handle
            .join()
            .expect_err("inverted acquisition must panic in debug builds");
        let message = panic
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic>".to_string());
        assert!(
            message.contains("\"shard\"") && message.contains("\"queue\""),
            "panic must name both locks: {message}"
        );
        assert!(
            message.contains("lock order violation"),
            "panic names the rule: {message}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn condvar_wait_releases_the_held_rank() {
        // While a consumer waits on the queue condvar it holds nothing, so
        // another acquisition (even lower-ranked) on that thread after the
        // wait returns must still see correct bookkeeping.
        let queue = Arc::new(OrderedMutex::new(RANK_QUEUE, false));
        let cv = Arc::new(Condvar::new());
        let (q2, cv2) = (Arc::clone(&queue), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut g = q2.lock();
            while !*g {
                g = wait(&cv2, g);
            }
            drop(g);
            held_ranks().is_empty()
        });
        std::thread::sleep(Duration::from_millis(20));
        *queue.lock() = true;
        cv.notify_all();
        assert!(waiter.join().expect("waiter panicked"));
    }

    #[test]
    fn wait_timeout_round_trips_the_guard() {
        let gate = OrderedMutex::new(RANK_SESSION, 41u32);
        let cv = Condvar::new();
        let g = gate.lock();
        let (mut g, timeout) = wait_timeout(&cv, g, Duration::from_millis(1));
        assert!(timeout.timed_out());
        *g += 1;
        assert_eq!(*g, 42);
    }

    #[test]
    fn poisoned_locks_recover() {
        let m = Arc::new(OrderedMutex::new(RANK_SESSION, 5u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned mutex still hands out its (last consistent) value.
        assert_eq!(*m.lock(), 5);
    }
}
