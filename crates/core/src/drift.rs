//! Per-shard drift sentinel: windowed residual tracking, Page-Hinkley
//! step-change detection, and online conformal calibration of prediction
//! intervals (paper §5.3's step-change scenario; PAPERS.md "Uncertainty
//! Aware Query Execution Time Prediction" for the calibration argument).
//!
//! Every observation the local model can score produces a log-space
//! residual `r = ln(1+actual) − μ`. Three things consume the stream:
//!
//! 1. a **windowed residual tracker** — a bounded ring of recent signed
//!    residuals summarised on demand through [`stage_metrics::Welford`]
//!    (mean bias + spread of the current window, reported by `bench_drift`
//!    and the chaos soak);
//! 2. a **Page-Hinkley-style one-sided CUSUM detector** over `|r|`: a
//!    [`stage_metrics::Welford`] baseline of the absolute residuals seen
//!    since the last retrain supplies a running mean `x̄` and spread `s`,
//!    and the statistic `S = max(0, S + min((|r| − x̄)/s, clip) − k)`
//!    accumulates only when residuals exceed the baseline by more than `k`
//!    spreads, with each sample's contribution winsorized at `clip` so a
//!    lone heavy-tail query can never fire the detector by itself. A step
//!    change inflates residuals, `S` climbs past `λ` within a handful of
//!    queries, and the detector latches until a retrain resets it.
//!    Normalizing by the baseline spread makes `k`/`λ` unit-free — the
//!    same thresholds work for a tight production model and a rough
//!    freshly-trained one. The state is a pure function of the observed
//!    residual sequence — no clocks, no randomness — so replays detect on
//!    exactly the same query;
//! 3. an **online conformal calibrator**: a bounded ring of normalized
//!    scores `z = |r| / σ`. The served interval uses the empirical
//!    `target_coverage`-quantile of recent scores instead of a
//!    normal-theory constant, so if the ensemble's σ is over- or
//!    under-confident the interval width self-corrects within one window.
//!
//! Intervals are additionally widened by `degraded_widen` while any
//! [`crate::stage::DegradedStats`] tier is active (a degraded answer was
//! counted within the last `degraded_hold` interval requests): a shard
//! serving off its fallback chain knows less than its σ claims.
//!
//! The whole sentinel persists: as a `calibration` field inside the serde
//! snapshot (legacy artefacts without the field restore to a cold
//! sentinel) and as the CALIBRATION section of the stage-store layout
//! (`crate::storefmt`), so a warm restart keeps its calibration instead of
//! serving uncalibrated intervals until the window refills.
//!
//! This module sits under `StagePredictor::observe`, which is on the
//! serve request path — everything here is panic-free by construction.

use serde::{Deserialize, Serialize};
use stage_metrics::quantile::quantile;
use stage_metrics::{interval_coverage, Welford};
use stage_store::{SectionReader, SectionWriter, StoreError};

/// Tuning for the detector, the calibrator, and the widening policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftConfig {
    /// CUSUM slack `k`, in baseline-spread units: per-sample tolerance
    /// subtracted from the normalized exceedance, so ordinary noise never
    /// accumulates.
    pub cusum_k: f64,
    /// CUSUM threshold `λ`, in baseline-spread units: the detector fires
    /// when the accumulated exceedance climbs past it.
    pub cusum_lambda: f64,
    /// Winsorization cap on a single sample's normalized exceedance
    /// (before `k` is subtracted). One heavy-tail outlier query must not
    /// fire the detector on its own: with the cap at `c`, crossing `λ`
    /// needs at least `λ / (c − k)` net-elevated samples, so a detection
    /// always testifies to a *sustained* shift.
    pub cusum_clip: f64,
    /// Floor on the baseline spread (in `ln(1+secs)` space) so a
    /// near-perfect model doesn't fire on microscopic noise.
    pub min_spread: f64,
    /// Residuals the detector must see before it may fire (warm-up).
    pub min_samples: u64,
    /// Ring-buffer capacity for both the residual window and the
    /// conformal score window.
    pub window: u32,
    /// Nominal coverage the calibrated interval targets (e.g. `0.9`).
    pub target_coverage: f64,
    /// z-multiplier served before `min_scores` conformal scores exist
    /// (normal-theory fallback).
    pub fallback_z: f64,
    /// Conformal scores required before the empirical quantile replaces
    /// [`DriftConfig::fallback_z`].
    pub min_scores: u32,
    /// Interval-width multiplier while a degraded tier is active.
    pub degraded_widen: f64,
    /// How many interval requests a single degraded event keeps the
    /// widening active for.
    pub degraded_hold: u32,
}

impl Default for DriftConfig {
    fn default() -> Self {
        Self {
            cusum_k: 1.0,
            cusum_lambda: 6.0,
            // λ/(clip−k) = 4: at least four net-elevated samples to fire.
            cusum_clip: 2.5,
            min_spread: 0.02,
            min_samples: 30,
            window: 256,
            target_coverage: 0.9,
            // Normal-theory two-sided 90% multiplier.
            fallback_z: 1.645,
            min_scores: 20,
            degraded_widen: 1.5,
            degraded_hold: 64,
        }
    }
}

/// σ below this is treated as "no usable uncertainty": the residual still
/// feeds the detector, but no conformal score is formed (dividing by a
/// degenerate σ would poison the quantile with infinities).
const MIN_SIGMA: f64 = 1e-9;

/// Floor for the served z-multiplier so a freak run of tiny scores can
/// never collapse intervals to a point.
const MIN_Z: f64 = 1e-3;

/// Per-shard drift + calibration state. Pure data: every transition is a
/// deterministic function of the residuals pushed in, which keeps the
/// sentinel inside stage-lint's `no-nondeterminism` scope and makes chaos
/// runs replayable.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DriftSentinel {
    config: DriftConfig,
    // Detector state: Welford baseline over |residual| since the last
    // reset, plus the one-sided CUSUM statistic.
    baseline: Welford,
    cusum: f64,
    /// Latched on detection; cleared by [`DriftSentinel::reset_after_retrain`].
    triggered: bool,
    detections: u64,
    forced_retrains: u64,
    // Windowed signed residuals (ring buffer; `residual_next` is the slot
    // the next push overwrites once the ring is full).
    residuals: Vec<f64>,
    residual_next: u32,
    // Conformal scores z = |r|/σ (same ring discipline).
    scores: Vec<f64>,
    score_next: u32,
    // Online coverage accounting: of the intervals this sentinel would
    // have served at observe time, how many contained the truth.
    covered: u64,
    measured: u64,
    // Degraded-widening state: the last DegradedStats::total() seen, and
    // how many more interval requests stay widened.
    last_degraded_total: u64,
    degraded_hold_left: u32,
}

impl Default for DriftSentinel {
    fn default() -> Self {
        Self::new(DriftConfig::default())
    }
}

impl DriftSentinel {
    /// A cold sentinel.
    pub fn new(config: DriftConfig) -> Self {
        Self {
            config,
            baseline: Welford::new(),
            cusum: 0.0,
            triggered: false,
            detections: 0,
            forced_retrains: 0,
            residuals: Vec::new(),
            residual_next: 0,
            scores: Vec::new(),
            score_next: 0,
            covered: 0,
            measured: 0,
            last_degraded_total: 0,
            degraded_hold_left: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> DriftConfig {
        self.config
    }

    /// Replaces the tuning without touching accumulated state (benches and
    /// the soak harness sharpen the detector for short phases).
    pub fn set_config(&mut self, config: DriftConfig) {
        self.config = config;
    }

    /// Feeds one scored observation: the local model said `(log_mu,
    /// log_sigma)` in `ln(1+secs)` space, the query actually took
    /// `log_actual`. Updates coverage accounting (against the interval
    /// that would have been served *before* absorbing this residual), the
    /// residual window, the conformal window, and the detector.
    pub fn observe_residual(&mut self, log_mu: f64, log_sigma: f64, log_actual: f64) {
        let r = log_actual - log_mu;
        if !r.is_finite() {
            return;
        }
        // Coverage first: the interval in force at prediction time did not
        // yet know this residual (split conformal accounting).
        if log_sigma.is_finite() && log_sigma >= 0.0 {
            let half = self.z_multiplier() * log_sigma;
            let triple = [(log_actual, log_mu - half, log_mu + half)];
            if let Some(c) = interval_coverage(&triple) {
                self.measured += 1;
                if c >= 1.0 {
                    self.covered += 1;
                }
            }
        }
        let cap = self.config.window;
        push_ring(&mut self.residuals, &mut self.residual_next, cap, r);
        if log_sigma.is_finite() && log_sigma > MIN_SIGMA {
            let z = r.abs() / log_sigma;
            if z.is_finite() {
                push_ring(&mut self.scores, &mut self.score_next, cap, z);
            }
        }
        // One-sided CUSUM over |r|, normalized by the baseline the
        // detector had *before* this sample (a shifted sample must not
        // dilute the very baseline it is judged against).
        let x = r.abs();
        if self.baseline.count() >= self.config.min_samples {
            let spread = self.baseline.std_dev().max(self.config.min_spread);
            // Winsorized: a lone outlier contributes at most `clip − k`.
            let normalized = ((x - self.baseline.mean()) / spread).min(self.config.cusum_clip);
            let exceedance = normalized - self.config.cusum_k;
            self.cusum = (self.cusum + exceedance).max(0.0);
            if !self.triggered && self.cusum > self.config.cusum_lambda {
                self.triggered = true;
                self.detections = self.detections.saturating_add(1);
            }
        }
        self.baseline.push(x);
    }

    /// The z-multiplier a calibrated interval should use right now: the
    /// empirical `target_coverage`-quantile of recent conformal scores
    /// (normal-theory fallback until the window has `min_scores`), times
    /// the degraded widening when active.
    pub fn z_multiplier(&self) -> f64 {
        let base = if self.scores.len() >= self.config.min_scores as usize {
            quantile(&self.scores, self.config.target_coverage).unwrap_or(self.config.fallback_z)
        } else {
            self.config.fallback_z
        };
        let widen = if self.degraded_hold_left > 0 {
            self.config.degraded_widen
        } else {
            1.0
        };
        (base * widen).max(MIN_Z)
    }

    /// Reports the current [`crate::stage::DegradedStats::total`] before an
    /// interval is formed: a fresh degraded event re-arms the widening for
    /// `degraded_hold` interval requests; otherwise the hold decays by one.
    pub fn note_degraded_total(&mut self, total: u64) {
        if total > self.last_degraded_total {
            self.last_degraded_total = total;
            self.degraded_hold_left = self.config.degraded_hold;
        } else {
            self.degraded_hold_left = self.degraded_hold_left.saturating_sub(1);
        }
    }

    /// Whether intervals are currently widened by the degraded policy.
    pub fn degraded_active(&self) -> bool {
        self.degraded_hold_left > 0
    }

    /// Whether the detector has fired and not yet been reset by a retrain.
    pub fn drift_detected(&self) -> bool {
        self.triggered
    }

    /// Lifetime count of detector firings.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Lifetime count of forced (out-of-band) retrains acknowledged via
    /// [`DriftSentinel::note_forced_retrain`].
    pub fn forced_retrains(&self) -> u64 {
        self.forced_retrains
    }

    /// Empirical coverage of the intervals served so far (`None` until the
    /// first measurable observation).
    pub fn coverage(&self) -> Option<f64> {
        if self.measured == 0 {
            None
        } else {
            Some(self.covered as f64 / self.measured as f64)
        }
    }

    /// Residuals the detector has absorbed since the last reset.
    pub fn residuals_seen(&self) -> u64 {
        self.baseline.count()
    }

    /// The current CUSUM statistic, in baseline-spread units (diagnostic:
    /// how close the detector is to firing).
    pub fn cusum_level(&self) -> f64 {
        self.cusum
    }

    /// Mean/spread summary of the current residual window.
    pub fn window_stats(&self) -> Welford {
        let mut w = Welford::new();
        for &r in &self.residuals {
            w.push(r);
        }
        w
    }

    /// Counts one forced retrain.
    pub fn note_forced_retrain(&mut self) {
        self.forced_retrains = self.forced_retrains.saturating_add(1);
    }

    /// Clears the detector and the residual window after a retrain: the
    /// old residual stream described the old model. The conformal score
    /// window is deliberately **kept** — normalized scores transfer far
    /// better than raw residuals, and holding the (wide) post-drift scores
    /// keeps intervals conservative while the new model proves itself,
    /// which is what preserves coverage through the step change.
    pub fn reset_after_retrain(&mut self) {
        self.baseline = Welford::new();
        self.cusum = 0.0;
        self.triggered = false;
        self.residuals.clear();
        self.residual_next = 0;
    }

    /// Encodes the sentinel as a stage-store section (CALIBRATION). All
    /// floats as `to_bits` images via the section writer — the round trip
    /// is bit-exact.
    pub fn store_encode(&self, w: &mut SectionWriter) {
        w.put_f64(self.config.cusum_k);
        w.put_f64(self.config.cusum_lambda);
        w.put_f64(self.config.cusum_clip);
        w.put_f64(self.config.min_spread);
        w.put_u64(self.config.min_samples);
        w.put_u32(self.config.window);
        w.put_f64(self.config.target_coverage);
        w.put_f64(self.config.fallback_z);
        w.put_u32(self.config.min_scores);
        w.put_f64(self.config.degraded_widen);
        w.put_u32(self.config.degraded_hold);
        w.put_u64(self.baseline.count());
        w.put_f64(self.baseline.mean());
        w.put_f64(self.baseline.m2());
        w.put_f64(self.cusum);
        w.put_bool(self.triggered);
        w.put_u64(self.detections);
        w.put_u64(self.forced_retrains);
        w.put_u64(self.covered);
        w.put_u64(self.measured);
        w.put_u64(self.last_degraded_total);
        w.put_u32(self.degraded_hold_left);
        w.put_u32(self.residual_next);
        w.put_u32(self.score_next);
        w.put_f64_slice(&self.residuals);
        w.put_f64_slice(&self.scores);
    }

    /// Decodes a sentinel from its CALIBRATION section. Hostile-input
    /// hardened: ring lengths and cursor indices are validated against the
    /// declared window before the state is accepted.
    pub fn store_decode(r: &mut SectionReader) -> Result<Self, StoreError> {
        let config = DriftConfig {
            cusum_k: r.f64()?,
            cusum_lambda: r.f64()?,
            cusum_clip: r.f64()?,
            min_spread: r.f64()?,
            min_samples: r.u64()?,
            window: r.u32()?,
            target_coverage: r.f64()?,
            fallback_z: r.f64()?,
            min_scores: r.u32()?,
            degraded_widen: r.f64()?,
            degraded_hold: r.u32()?,
        };
        let baseline = Welford::from_parts(r.u64()?, r.f64()?, r.f64()?);
        let cusum = r.f64()?;
        let triggered = r.bool()?;
        let detections = r.u64()?;
        let forced_retrains = r.u64()?;
        let covered = r.u64()?;
        let measured = r.u64()?;
        let last_degraded_total = r.u64()?;
        let degraded_hold_left = r.u32()?;
        let residual_next = r.u32()?;
        let score_next = r.u32()?;
        let residuals = r.f64_vec()?;
        let scores = r.f64_vec()?;
        let cap = config.window as usize;
        if residuals.len() > cap || scores.len() > cap {
            return Err(StoreError::Malformed {
                detail: format!(
                    "calibration rings exceed window {}: {} residuals, {} scores",
                    cap,
                    residuals.len(),
                    scores.len()
                ),
            });
        }
        if residual_next as usize > residuals.len() || score_next as usize > scores.len() {
            return Err(StoreError::Malformed {
                detail: "calibration ring cursor out of range".to_string(),
            });
        }
        Ok(Self {
            config,
            baseline,
            cusum,
            triggered,
            detections,
            forced_retrains,
            residuals,
            residual_next,
            scores,
            score_next,
            covered,
            measured,
            last_degraded_total,
            degraded_hold_left,
        })
    }
}

/// Appends into a bounded ring: grow until `cap`, then overwrite the slot
/// at `next` (the oldest element) and advance.
fn push_ring(buf: &mut Vec<f64>, next: &mut u32, cap: u32, x: f64) {
    if cap == 0 {
        return;
    }
    if buf.len() < cap as usize {
        buf.push(x);
        *next = buf.len() as u32 % cap;
    } else if let Some(slot) = buf.get_mut(*next as usize) {
        *slot = x;
        *next = (*next + 1) % cap;
    }
}

// Legacy-era parity: snapshots written before the sentinel existed have no
// `calibration` field, which the vendored serde surfaces as `Null`. A
// hand-written impl maps that to a cold sentinel instead of an error, so
// old JSON artefacts keep restoring (the store format handles the same
// case by omitting the CALIBRATION section).
impl serde::Deserialize for DriftSentinel {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        if matches!(v, serde::Value::Null) {
            return Ok(Self::default());
        }
        let obj = serde::expect_object(v, "DriftSentinel")?;
        Ok(Self {
            config: serde::de_field(obj, "config", "DriftSentinel")?,
            baseline: serde::de_field(obj, "baseline", "DriftSentinel")?,
            cusum: serde::de_field(obj, "cusum", "DriftSentinel")?,
            triggered: serde::de_field(obj, "triggered", "DriftSentinel")?,
            detections: serde::de_field(obj, "detections", "DriftSentinel")?,
            forced_retrains: serde::de_field(obj, "forced_retrains", "DriftSentinel")?,
            residuals: serde::de_field(obj, "residuals", "DriftSentinel")?,
            residual_next: serde::de_field(obj, "residual_next", "DriftSentinel")?,
            scores: serde::de_field(obj, "scores", "DriftSentinel")?,
            score_next: serde::de_field(obj, "score_next", "DriftSentinel")?,
            covered: serde::de_field(obj, "covered", "DriftSentinel")?,
            measured: serde::de_field(obj, "measured", "DriftSentinel")?,
            last_degraded_total: serde::de_field(obj, "last_degraded_total", "DriftSentinel")?,
            degraded_hold_left: serde::de_field(obj, "degraded_hold_left", "DriftSentinel")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sharp() -> DriftConfig {
        DriftConfig {
            min_samples: 10,
            cusum_lambda: 4.0,
            min_scores: 5,
            ..DriftConfig::default()
        }
    }

    #[test]
    fn steady_residuals_never_trigger() {
        let mut s = DriftSentinel::new(sharp());
        for i in 0..500 {
            // Small alternating noise around zero.
            let r = if i % 2 == 0 { 0.05 } else { -0.05 };
            s.observe_residual(1.0, 0.2, 1.0 + r);
        }
        assert!(!s.drift_detected());
        assert_eq!(s.detections(), 0);
        assert_eq!(s.residuals_seen(), 500);
    }

    #[test]
    fn step_change_triggers_and_latches() {
        let mut s = DriftSentinel::new(sharp());
        for i in 0..100 {
            let r = if i % 2 == 0 { 0.05 } else { -0.05 };
            s.observe_residual(1.0, 0.2, 1.0 + r);
        }
        assert!(!s.drift_detected());
        // The workload shifts: residuals jump to ~1.4 in log space.
        let mut fired_at = None;
        for i in 0..100 {
            s.observe_residual(1.0, 0.2, 2.4);
            if s.drift_detected() && fired_at.is_none() {
                fired_at = Some(i);
            }
        }
        let latency = fired_at.expect("detector must fire on a 4x step change");
        assert!(latency < 20, "fired after {latency} shifted queries");
        assert_eq!(
            s.detections(),
            1,
            "latched: one detection, not one per sample"
        );
        // Reset heals the latch but keeps lifetime counters.
        s.reset_after_retrain();
        assert!(!s.drift_detected());
        assert_eq!(s.detections(), 1);
    }

    #[test]
    fn single_outlier_does_not_trigger() {
        let mut s = DriftSentinel::new(sharp());
        for i in 0..60 {
            let r = if i % 2 == 0 { 0.05 } else { -0.05 };
            s.observe_residual(1.0, 0.2, 1.0 + r);
        }
        // One monstrous heavy-tail query: 20 spreads over the baseline.
        // Unwinsorized this alone would blow far past λ; clipped it adds
        // at most `clip − k` and decays away on the next quiet samples.
        s.observe_residual(1.0, 0.2, 4.0);
        assert!(
            !s.drift_detected(),
            "a lone outlier must not read as drift (cusum {})",
            s.cusum_level()
        );
        assert!(s.cusum_level() <= sharp().cusum_clip - sharp().cusum_k + 1e-12);
        for i in 0..10 {
            let r = if i % 2 == 0 { 0.05 } else { -0.05 };
            s.observe_residual(1.0, 0.2, 1.0 + r);
        }
        assert_eq!(s.cusum_level(), 0.0, "quiet traffic drains the statistic");
        assert_eq!(s.detections(), 0);
    }

    #[test]
    fn detection_is_a_pure_function_of_residuals() {
        let feed = |s: &mut DriftSentinel| {
            for i in 0..200 {
                let r = if i < 150 { 0.02 } else { 1.0 };
                s.observe_residual(0.5, 0.1, 0.5 + r);
            }
        };
        let mut a = DriftSentinel::new(sharp());
        let mut b = DriftSentinel::new(sharp());
        feed(&mut a);
        feed(&mut b);
        assert_eq!(a, b, "same residual stream, bit-identical state");
        assert!(a.drift_detected());
    }

    #[test]
    fn conformal_quantile_tracks_overconfident_sigma() {
        let mut s = DriftSentinel::new(sharp());
        // Model claims σ=0.1 but residuals are ±0.3: z ≈ 3 everywhere.
        for i in 0..50 {
            let r = if i % 2 == 0 { 0.3 } else { -0.3 };
            s.observe_residual(1.0, 0.1, 1.0 + r);
        }
        let z = s.z_multiplier();
        assert!((z - 3.0).abs() < 0.2, "calibrated z ≈ 3, got {z}");
        // And the served interval half-width is z·σ ≈ 0.3 — honest again.
    }

    #[test]
    fn fallback_z_before_enough_scores() {
        let s = DriftSentinel::new(DriftConfig::default());
        assert_eq!(s.z_multiplier(), DriftConfig::default().fallback_z);
        assert_eq!(s.coverage(), None);
    }

    #[test]
    fn degenerate_sigma_feeds_detector_but_not_calibrator() {
        let mut s = DriftSentinel::new(sharp());
        for _ in 0..50 {
            s.observe_residual(1.0, 0.0, 1.3);
        }
        assert_eq!(s.residuals_seen(), 50);
        // No scores formed: quantile still the fallback.
        assert_eq!(s.z_multiplier(), sharp().fallback_z);
        // σ=0 point intervals measured honestly: all missed.
        assert_eq!(s.coverage(), Some(0.0));
    }

    #[test]
    fn degraded_widening_arms_and_decays() {
        let mut s = DriftSentinel::new(DriftConfig {
            degraded_hold: 3,
            degraded_widen: 2.0,
            ..DriftConfig::default()
        });
        let base = s.z_multiplier();
        s.note_degraded_total(1);
        assert!(s.degraded_active());
        assert!((s.z_multiplier() - base * 2.0).abs() < 1e-12);
        s.note_degraded_total(1);
        s.note_degraded_total(1);
        s.note_degraded_total(1);
        assert!(!s.degraded_active(), "hold decays without fresh events");
        assert_eq!(s.z_multiplier(), base);
        // A fresh event re-arms.
        s.note_degraded_total(2);
        assert!(s.degraded_active());
    }

    #[test]
    fn coverage_accounts_served_intervals() {
        let mut s = DriftSentinel::new(sharp());
        // Well-calibrated: σ=0.5, residuals ±0.1 — fallback z=1.645 covers.
        for i in 0..40 {
            let r = if i % 2 == 0 { 0.1 } else { -0.1 };
            s.observe_residual(1.0, 0.5, 1.0 + r);
        }
        assert_eq!(s.coverage(), Some(1.0));
        assert_eq!(s.forced_retrains(), 0);
    }

    #[test]
    fn ring_buffer_wraps() {
        let mut s = DriftSentinel::new(DriftConfig {
            window: 4,
            min_scores: 2,
            ..sharp()
        });
        for i in 0..10 {
            s.observe_residual(1.0, 0.1, 1.0 + 0.01 * (i + 1) as f64);
        }
        // Window holds only the last 4 residuals.
        assert_eq!(s.window_stats().count(), 4);
        let m = s.window_stats().mean();
        assert!((m - 0.085).abs() < 1e-12, "window mean {m}");
    }

    #[test]
    fn store_round_trip_is_bit_exact() {
        let mut s = DriftSentinel::new(sharp());
        for i in 0..75 {
            let r = if i < 60 { 0.07 } else { 0.9 };
            s.observe_residual(1.0, 0.2, 1.0 + r);
        }
        s.note_degraded_total(3);
        s.note_forced_retrain();
        let mut w = SectionWriter::new();
        s.store_encode(&mut w);
        let bytes = w.finish();
        let mut r = SectionReader::new(&bytes);
        let back = DriftSentinel::store_decode(&mut r).expect("decode");
        r.expect_end().expect("fully consumed");
        assert_eq!(back, s);
    }

    #[test]
    fn store_decode_rejects_hostile_cursors() {
        let mut s = DriftSentinel::new(sharp());
        s.observe_residual(1.0, 0.2, 1.5);
        // Corrupt the cursor past the ring length.
        s.residual_next = 99;
        let mut w = SectionWriter::new();
        s.store_encode(&mut w);
        let bytes = w.finish();
        let mut r = SectionReader::new(&bytes);
        assert!(matches!(
            DriftSentinel::store_decode(&mut r),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn serde_null_restores_cold_sentinel() {
        use serde::Deserialize;
        let cold = DriftSentinel::from_value(&serde::Value::Null).expect("null tolerated");
        assert_eq!(cold, DriftSentinel::default());
        // And a live round trip through the value tree is lossless.
        let mut s = DriftSentinel::new(sharp());
        for _ in 0..30 {
            s.observe_residual(1.0, 0.2, 1.4);
        }
        let v = serde::Serialize::to_value(&s);
        let back = DriftSentinel::from_value(&v).expect("round trip");
        assert_eq!(back, s);
    }
}
