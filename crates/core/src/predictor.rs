//! The predictor trait and shared prediction types.

use serde::{Deserialize, Serialize};
use stage_plan::PhysicalPlan;

/// Fallback prediction (seconds) when a predictor has no information at all
/// (cold start). Most fleet queries are short, so defaulting short keeps the
/// workload manager's behaviour sane until models warm up.
pub const DEFAULT_PREDICTION_SECS: f64 = 1.0;

/// Which stage of the hierarchy produced a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictionSource {
    /// Exec-time cache hit.
    Cache,
    /// Local Bayesian-ensemble model.
    Local,
    /// Global plan-GCN model.
    Global,
    /// Cold-start default (no model had information).
    Default,
}

/// A prediction with optional uncertainty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted execution time in seconds.
    pub exec_secs: f64,
    /// Total predictive variance in `ln(1+secs)` space, when the producing
    /// model measures one (`None` for cache/default predictions).
    pub log_variance: Option<f64>,
    /// Producing stage.
    pub source: PredictionSource,
}

impl Prediction {
    /// A cache/default style point prediction.
    pub fn point(exec_secs: f64, source: PredictionSource) -> Self {
        Self {
            exec_secs,
            log_variance: None,
            source,
        }
    }

    /// A symmetric confidence interval in seconds: `exp(μ ± z·σ)` mapped
    /// back from log space. Returns `None` when no variance is available.
    pub fn confidence_interval(&self, z: f64) -> Option<(f64, f64)> {
        let var = self.log_variance?;
        let mu = self.exec_secs.max(0.0).ln_1p();
        let half = z * var.sqrt();
        Some(((mu - half).exp_m1().max(0.0), (mu + half).exp_m1().max(0.0)))
    }
}

/// Everything a predictor may know about the system besides the plan:
/// instance features and the current concurrency level. The global model
/// appends these to its readout (paper §4.4); the cache and local model
/// ignore them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemContext {
    /// Instance/system feature vector (node type one-hot, node count,
    /// ln memory, concurrency — see `stage_workload::InstanceSpec`).
    pub features: Vec<f64>,
}

impl SystemContext {
    /// A context with no information (all-zero features of width `dim`).
    pub fn empty(dim: usize) -> Self {
        Self {
            features: vec![0.0; dim],
        }
    }
}

/// An online exec-time predictor: predicts before execution, observes the
/// true exec-time afterwards (paper Fig. 4's feedback loop).
pub trait ExecTimePredictor {
    /// Predicts the exec-time of `plan` under `sys`.
    fn predict(&mut self, plan: &PhysicalPlan, sys: &SystemContext) -> Prediction;

    /// Records the observed exec-time after the query ran.
    fn observe(&mut self, plan: &PhysicalPlan, sys: &SystemContext, actual_secs: f64);

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Approximate resident memory of the predictor's state in bytes
    /// (Fig. 9-style accounting).
    fn approx_size_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_prediction_has_no_interval() {
        let p = Prediction::point(3.0, PredictionSource::Cache);
        assert_eq!(p.confidence_interval(2.0), None);
    }

    #[test]
    fn interval_brackets_the_mean() {
        let p = Prediction {
            exec_secs: 10.0,
            log_variance: Some(0.25),
            source: PredictionSource::Local,
        };
        let (lo, hi) = p.confidence_interval(1.96).unwrap();
        assert!(lo < 10.0 && 10.0 < hi, "({lo}, {hi})");
        // Wider z, wider interval.
        let (lo2, hi2) = p.confidence_interval(3.0).unwrap();
        assert!(lo2 < lo && hi2 > hi);
    }

    #[test]
    fn interval_floors_at_zero() {
        let p = Prediction {
            exec_secs: 0.01,
            log_variance: Some(100.0),
            source: PredictionSource::Local,
        };
        let (lo, _) = p.confidence_interval(3.0).unwrap();
        assert!(lo >= 0.0);
    }

    #[test]
    fn empty_context() {
        let c = SystemContext::empty(7);
        assert_eq!(c.features.len(), 7);
        assert!(c.features.iter().all(|&f| f == 0.0));
    }
}
