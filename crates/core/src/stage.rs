//! The Stage predictor: cache → local → global routing (paper §4.1, Fig. 4).
//!
//! ```text
//! query plan ──► 33-dim vector ──► exec-time cache ──hit──► prediction
//!                     │ miss
//!                     ▼
//!               local model ──short OR confident──► prediction
//!                     │ long AND uncertain
//!                     ▼
//!               global model (plan tree + system features) ──► prediction
//! ```
//!
//! After execution, the observed exec-time feeds the cache, and — only on a
//! cache miss, implementing the paper's dedup-via-cache trick — the local
//! training pool.
//!
//! The routing hierarchy doubles as a **fallback chain**: a
//! [`ComponentFaults`] hook (production: none; chaos testing:
//! `stage-chaos`) can declare the local or global tier unavailable for a
//! given call, or a due retrain poisoned/slowed, and the predictor degrades
//! to the next-cheaper tier instead of failing — counting every degraded
//! answer in [`DegradedStats`] so operators (and the soak harness's fault
//! ledger) can see exactly how often each tier was bypassed.
//!
//! This file is inside `stage-lint`'s panic-freedom scope: predictions are
//! served on the request path of `stage-serve`, where a panic poisons a
//! shard for every later request.

use crate::cache::{CacheConfig, ExecTimeCache};
use crate::drift::{DriftConfig, DriftSentinel};
use crate::global::GlobalModel;
use crate::local::{LocalModel, LocalModelConfig};
use crate::pool::{PoolConfig, TrainingPool};
use crate::predictor::{
    ExecTimePredictor, Prediction, PredictionSource, SystemContext, DEFAULT_PREDICTION_SECS,
};
use crate::to_log_space;
use serde::{Deserialize, Serialize};
use stage_plan::{plan_feature_vector, PhysicalPlan};
use std::sync::Arc;

/// Escalation policy from the local to the global model.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoutingConfig {
    /// Local predictions below this (seconds) are returned directly — the
    /// paper only escalates when the query "is longer than a couple of
    /// seconds", because for short queries the global model's ~100 ms
    /// inference would dominate.
    pub short_circuit_secs: f64,
    /// Local predictions with total log-space std below this are
    /// "highly confident" and returned directly.
    pub confident_log_std: f64,
    /// When `false`, repeats are added to the training pool too (the
    /// "no dedup" ablation).
    pub dedup_via_cache: bool,
}

impl Default for RoutingConfig {
    fn default() -> Self {
        Self {
            short_circuit_secs: 5.0,
            confident_log_std: 1.0,
            dedup_via_cache: true,
        }
    }
}

/// Full Stage configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, Default)]
pub struct StageConfig {
    /// Exec-time cache settings.
    pub cache: CacheConfig,
    /// Training-pool settings.
    pub pool: PoolConfig,
    /// Local-model settings.
    pub local: LocalModelConfig,
    /// Escalation policy.
    pub routing: RoutingConfig,
    /// Append the [`SystemContext`] features (notably the concurrency level
    /// at submission time) to the local model's input — the paper's §6.3
    /// "environment factors" future-work direction. Off by default: the
    /// published Stage uses the plan-only 33-dim vector.
    pub env_features: bool,
}

/// Counters for which stage served each prediction (paper Fig. 9 reports
/// the global model firing ~3% of the time, the cache ~60%).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Served by the exec-time cache.
    pub cache: u64,
    /// Served by the local model.
    pub local: u64,
    /// Served by the global model.
    pub global: u64,
    /// Served by the cold-start default.
    pub default: u64,
}

impl RoutingStats {
    /// Total predictions.
    pub fn total(&self) -> u64 {
        self.cache + self.local + self.global + self.default
    }

    /// Fraction served by a source (0 when nothing predicted).
    pub fn fraction(&self, source: PredictionSource) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let n = match source {
            PredictionSource::Cache => self.cache,
            PredictionSource::Local => self.local,
            PredictionSource::Global => self.global,
            PredictionSource::Default => self.default,
        };
        n as f64 / total as f64
    }
}

/// How an intercepted due retrain misbehaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrainFault {
    /// The retrain is skipped entirely; the stale ensemble keeps serving
    /// and the training debt stays due.
    Poisoned,
    /// The retrain runs but is slow (the hook models the latency itself,
    /// e.g. by sleeping while the caller holds the shard lock).
    Slowed,
}

/// Component-level fault oracle consulted at each point where a model tier
/// could fail. Production passes no hook (every default answers "healthy");
/// the chaos layer implements this on its seeded fault plan. Each method is
/// consulted exactly once per would-be use of that tier, so a fault
/// injector's ledger lines up one-to-one with [`DegradedStats`].
pub trait ComponentFaults: Send + Sync {
    /// Whether the local model is unavailable for this prediction.
    fn local_unavailable(&self) -> bool {
        false
    }

    /// Whether the global model is unavailable for this escalation.
    fn global_unavailable(&self) -> bool {
        false
    }

    /// Whether (and how) a due retrain misbehaves.
    fn retrain_fault(&self) -> Option<RetrainFault> {
        None
    }
}

/// Counters for degraded-mode answers: each increment is one fault the
/// predictor absorbed by falling back a tier instead of failing the
/// request.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradedStats {
    /// Predictions that wanted the global model but found it unavailable
    /// (served by the local tier or the default instead).
    pub global_failover: u64,
    /// Predictions (scalar) or batches that found the local model
    /// unavailable (served by the global tier or the default instead).
    pub local_failover: u64,
    /// Due retrains skipped because the training was poisoned; the stale
    /// ensemble kept serving.
    pub retrains_poisoned: u64,
    /// Due retrains that ran slowed (the shard served nothing meanwhile).
    pub retrains_slowed: u64,
}

impl DegradedStats {
    /// Total degraded events.
    pub fn total(&self) -> u64 {
        self.global_failover + self.local_failover + self.retrains_poisoned + self.retrains_slowed
    }
}

/// The full serializable state of a [`StagePredictor`] minus the global
/// model: cache, training pool, local model, routing counters, and the
/// configuration they were built under. The global model is deliberately
/// excluded — it is fleet-trained and shipped separately (paper Fig. 9
/// deploys it as a shared service), so a snapshot stays a per-instance
/// artefact and re-attaching the global model after restore is the
/// caller's job ([`StagePredictor::set_global`]).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Configuration the predictor was running with.
    pub config: StageConfig,
    /// Exec-time cache contents (hit/miss counters included).
    pub cache: ExecTimeCache,
    /// Training pool contents.
    pub pool: TrainingPool,
    /// Local model (trained ensemble, retrain counters, instance salt).
    pub local: LocalModel,
    /// Routing counters.
    pub stats: RoutingStats,
    /// Degraded-mode counters (how often each tier was bypassed).
    pub degraded: DegradedStats,
    /// Drift sentinel + conformal calibration state. Snapshots written
    /// before the sentinel existed restore a cold one (the field's
    /// hand-written `Deserialize` maps the missing-field `Null` to
    /// `DriftSentinel::default()`).
    pub calibration: DriftSentinel,
}

/// The hierarchical Stage predictor.
pub struct StagePredictor {
    config: StageConfig,
    cache: ExecTimeCache,
    pool: TrainingPool,
    local: LocalModel,
    global: Option<Arc<GlobalModel>>,
    stats: RoutingStats,
    degraded: DegradedStats,
    drift: DriftSentinel,
    faults: Option<Arc<dyn ComponentFaults>>,
}

impl StagePredictor {
    /// Creates a Stage predictor without a global model (cache + local
    /// only — the configuration currently deployed in production per §5.2).
    pub fn new(config: StageConfig) -> Self {
        Self {
            cache: ExecTimeCache::new(config.cache),
            pool: TrainingPool::new(config.pool),
            local: LocalModel::new(config.local),
            global: None,
            stats: RoutingStats::default(),
            degraded: DegradedStats::default(),
            drift: DriftSentinel::default(),
            faults: None,
            config,
        }
    }

    /// Creates a Stage predictor with a shared fleet-trained global model.
    pub fn with_global(config: StageConfig, global: Arc<GlobalModel>) -> Self {
        let mut s = Self::new(config);
        s.global = Some(global);
        s
    }

    /// Attaches (or replaces) the global model.
    pub fn set_global(&mut self, global: Arc<GlobalModel>) {
        self.global = Some(global);
    }

    /// Sets the per-instance seed salt on the local model (see
    /// [`LocalModel::set_instance_salt`]): retraining seeds then derive only
    /// from per-instance state, so shard-parallel fleet replays are
    /// bit-identical to sequential ones.
    pub fn set_instance_salt(&mut self, salt: u64) {
        self.local.set_instance_salt(salt);
    }

    /// Routing counters so far.
    pub fn stats(&self) -> RoutingStats {
        self.stats
    }

    /// The exec-time cache (read access for diagnostics).
    pub fn cache(&self) -> &ExecTimeCache {
        &self.cache
    }

    /// The local model (read access for diagnostics).
    pub fn local(&self) -> &LocalModel {
        &self.local
    }

    /// The training pool (read access for diagnostics).
    pub fn pool(&self) -> &TrainingPool {
        &self.pool
    }

    /// Exports the predictor's full mutable state (cache + pool + local
    /// model + routing counters) as one artefact. Pair with
    /// [`StagePredictor::from_snapshot`] to checkpoint/restore a warm
    /// predictor across process restarts (no cold-start, Fig. 9
    /// discussion); `crate::persist::save_stage`/`load_stage` wrap it in
    /// the versioned on-disk envelope.
    pub fn snapshot(&self) -> StageSnapshot {
        StageSnapshot {
            config: self.config,
            cache: self.cache.clone(),
            pool: self.pool.clone(),
            local: self.local.clone(),
            stats: self.stats,
            degraded: self.degraded,
            calibration: self.drift.clone(),
        }
    }

    /// Rebuilds a predictor from a snapshot, resuming exactly where
    /// [`StagePredictor::snapshot`] left it. The global model is not part
    /// of the snapshot; attach one afterwards with
    /// [`StagePredictor::set_global`] if the deployment uses it.
    pub fn from_snapshot(snapshot: StageSnapshot) -> Self {
        Self {
            config: snapshot.config,
            cache: snapshot.cache,
            pool: snapshot.pool,
            local: snapshot.local,
            global: None,
            stats: snapshot.stats,
            degraded: snapshot.degraded,
            drift: snapshot.calibration,
            faults: None,
        }
    }

    /// Degraded-mode counters so far.
    pub fn degraded_stats(&self) -> DegradedStats {
        self.degraded
    }

    /// Installs a component-level fault oracle (chaos testing). Production
    /// never calls this; with no hook installed every fault check is a
    /// branch-predictable `None`.
    pub fn set_component_faults(&mut self, faults: Arc<dyn ComponentFaults>) {
        self.faults = Some(faults);
    }

    /// Consults the fault oracle for the local tier; counts the failover.
    fn fault_local_unavailable(&mut self) -> bool {
        match &self.faults {
            Some(f) if f.local_unavailable() => {
                self.degraded.local_failover += 1;
                true
            }
            _ => false,
        }
    }

    /// Consults the fault oracle for the global tier; counts the failover.
    fn fault_global_unavailable(&mut self) -> bool {
        match &self.faults {
            Some(f) if f.global_unavailable() => {
                self.degraded.global_failover += 1;
                true
            }
            _ => false,
        }
    }

    /// The drift sentinel (detector state, calibration window, coverage
    /// accounting — read access for health loops and reports).
    pub fn drift(&self) -> &DriftSentinel {
        &self.drift
    }

    /// Replaces the drift/calibration tuning, keeping accumulated state
    /// (benches and soak harnesses sharpen the detector for short runs).
    pub fn set_drift_config(&mut self, config: DriftConfig) {
        self.drift.set_config(config);
    }

    /// Whether the drift detector has fired since the last retrain — the
    /// signal the serve health loop polls to force an out-of-band retrain.
    pub fn drift_detected(&self) -> bool {
        self.drift.drift_detected()
    }

    /// Forces an out-of-band retrain from the current pool (the health
    /// loop's response to a drift detection). On success the detector and
    /// residual window reset — the old residual stream described the old
    /// model — while the conformal score window is kept so intervals stay
    /// conservatively wide until the new model proves itself. Returns
    /// `false` when the pool cannot train a model yet (nothing changes;
    /// the detection stays latched so the next poll retries).
    pub fn force_retrain(&mut self) -> bool {
        let before = self.local.trainings();
        self.local.retrain(&self.pool);
        let trained = self.local.trainings() > before;
        if trained {
            self.drift.note_forced_retrain();
            self.drift.reset_after_retrain();
        }
        trained
    }

    /// The calibrated prediction interval for `p`, in seconds: half-width
    /// `ẑ·σ` in `ln(1+secs)` space where `ẑ` is the conformal quantile of
    /// recent normalized residuals (not a fixed normal-theory constant),
    /// widened by the configured multiplier while any degraded tier is
    /// active. `None` when the producing stage measured no variance
    /// (cache/default answers), exactly like
    /// [`Prediction::confidence_interval`].
    pub fn calibrated_interval(&mut self, p: &Prediction) -> Option<(f64, f64)> {
        self.drift.note_degraded_total(self.degraded.total());
        let var = p.log_variance?;
        let half = self.drift.z_multiplier() * var.max(0.0).sqrt();
        let mu = p.exec_secs.max(0.0).ln_1p();
        Some(((mu - half).exp_m1().max(0.0), (mu + half).exp_m1().max(0.0)))
    }

    /// Component-wise memory breakdown `(cache, pool, local)` in bytes. The
    /// global model is excluded as in the paper's Fig. 9 (it is deployed as
    /// a shared service, not per-instance state).
    pub fn size_breakdown(&self) -> (usize, usize, usize) {
        (
            self.cache.approx_size_bytes(),
            self.pool.approx_size_bytes(),
            self.local.approx_size_bytes(),
        )
    }
}

impl StagePredictor {
    /// The local model's input: the 33-dim plan vector, optionally extended
    /// with the system-context features (§6.3 environment factors).
    fn local_features(&self, plan: &PhysicalPlan, sys: &SystemContext) -> Vec<f64> {
        let mut v = plan_feature_vector(plan).0;
        if self.config.env_features {
            v.extend_from_slice(&sys.features);
        }
        v
    }

    /// Predicts a whole batch of plans under one `sys` context. Routing
    /// decisions, predictions, and every counter are identical to calling
    /// [`ExecTimePredictor::predict`] once per plan in order; the batch path
    /// just amortises the per-query overheads:
    ///
    /// * each plan's 33-dim vector is extracted once and hashed once (the
    ///   scalar path extracts it twice — for the cache key and again for the
    ///   local-model input);
    /// * all cache misses go through one flat-forest ensemble pass
    ///   ([`LocalModel::predict_batch`], bit-identical to per-row predict)
    ///   instead of one arena traversal per query.
    pub fn predict_batch(
        &mut self,
        plans: &[PhysicalPlan],
        sys: &SystemContext,
    ) -> Vec<Prediction> {
        // Pass 1: extract + hash once per plan, probe the cache.
        let mut results: Vec<Option<Prediction>> = Vec::with_capacity(plans.len());
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_features: Vec<Vec<f64>> = Vec::new();
        for plan in plans {
            let mut features = plan_feature_vector(plan).0;
            let key = ExecTimeCache::key_of_features(&features);
            if let Some(secs) = self.cache.get_by_key(key) {
                self.stats.cache += 1;
                results.push(Some(Prediction::point(secs, PredictionSource::Cache)));
            } else {
                if self.config.env_features {
                    features.extend_from_slice(&sys.features);
                }
                miss_idx.push(results.len());
                miss_features.push(features);
                results.push(None);
            }
        }
        // Pass 2: one batched local-model call covers every miss. The fault
        // oracle is consulted once per batch that would use the local tier
        // (an all-hit batch never touches it), keeping the ledger exact.
        let local_preds = if miss_idx.is_empty() || self.fault_local_unavailable() {
            None
        } else {
            self.local.predict_batch(&miss_features)
        };
        match local_preds {
            Some(local_preds) => {
                for (&i, lp) in miss_idx.iter().zip(&local_preds) {
                    let short = lp.exec_secs < self.config.routing.short_circuit_secs;
                    let confident = lp.log_std() <= self.config.routing.confident_log_std;
                    let escalate = !short
                        && !confident
                        && self.global.is_some()
                        && !self.fault_global_unavailable();
                    let p = match (escalate, &self.global, plans.get(i)) {
                        (true, Some(global), Some(plan)) => {
                            self.stats.global += 1;
                            Prediction::point(global.predict(plan, sys), PredictionSource::Global)
                        }
                        _ => {
                            self.stats.local += 1;
                            Prediction {
                                exec_secs: lp.exec_secs,
                                log_variance: Some(lp.total_variance()),
                                source: PredictionSource::Local,
                            }
                        }
                    };
                    if let Some(slot) = results.get_mut(i) {
                        *slot = Some(p);
                    }
                }
            }
            None => {
                // Cold start (or local failover) for every miss: global when
                // attached and healthy, default otherwise — the same branch
                // the scalar path takes.
                for &i in &miss_idx {
                    let use_global = self.global.is_some() && !self.fault_global_unavailable();
                    let p = match (use_global, &self.global, plans.get(i)) {
                        (true, Some(global), Some(plan)) => {
                            self.stats.global += 1;
                            Prediction::point(global.predict(plan, sys), PredictionSource::Global)
                        }
                        _ => {
                            self.stats.default += 1;
                            Prediction::point(DEFAULT_PREDICTION_SECS, PredictionSource::Default)
                        }
                    };
                    if let Some(slot) = results.get_mut(i) {
                        *slot = Some(p);
                    }
                }
            }
        }
        results
            .into_iter()
            .map(|p| {
                // Every slot is filled by the hit or miss pass; the default
                // here is unreachable but keeps this path panic-free.
                p.unwrap_or_else(|| {
                    Prediction::point(DEFAULT_PREDICTION_SECS, PredictionSource::Default)
                })
            })
            .collect()
    }
}

impl ExecTimePredictor for StagePredictor {
    fn predict(&mut self, plan: &PhysicalPlan, sys: &SystemContext) -> Prediction {
        let key = ExecTimeCache::key_of(plan);
        // Stage 1: exact-match cache.
        if let Some(secs) = self.cache.lookup(key) {
            self.stats.cache += 1;
            return Prediction::point(secs, PredictionSource::Cache);
        }
        // Stage 2: local model (bypassed entirely when the fault oracle
        // declares the tier down — the failover is counted in the consult).
        let features = self.local_features(plan, sys);
        let local_answer = if self.fault_local_unavailable() {
            None
        } else {
            self.local.predict(&features)
        };
        match local_answer {
            Some(lp) => {
                let short = lp.exec_secs < self.config.routing.short_circuit_secs;
                let confident = lp.log_std() <= self.config.routing.confident_log_std;
                // Stage 3: long + uncertain -> global model, unless the
                // fault oracle fails the escalation (then the local answer
                // stands — the fallback chain runs downhill).
                let escalate = !short
                    && !confident
                    && self.global.is_some()
                    && !self.fault_global_unavailable();
                if escalate {
                    if let Some(global) = &self.global {
                        self.stats.global += 1;
                        return Prediction::point(
                            global.predict(plan, sys),
                            PredictionSource::Global,
                        );
                    }
                }
                self.stats.local += 1;
                Prediction {
                    exec_secs: lp.exec_secs,
                    log_variance: Some(lp.total_variance()),
                    source: PredictionSource::Local,
                }
            }
            None => {
                // Cold start (or local failover): prefer the transferable
                // global model when available and healthy (a key Stage
                // advantage on new instances).
                let use_global = self.global.is_some() && !self.fault_global_unavailable();
                if use_global {
                    if let Some(global) = &self.global {
                        self.stats.global += 1;
                        return Prediction::point(
                            global.predict(plan, sys),
                            PredictionSource::Global,
                        );
                    }
                }
                self.stats.default += 1;
                Prediction::point(DEFAULT_PREDICTION_SECS, PredictionSource::Default)
            }
        }
    }

    fn observe(&mut self, plan: &PhysicalPlan, sys: &SystemContext, actual_secs: f64) {
        let key = ExecTimeCache::key_of(plan);
        let was_cached = self.cache.contains(key);
        let features = self.local_features(plan, sys);
        // Drift sentinel: score the observation against the *current* local
        // model, before cache/pool/retrain absorb it — the residual then
        // measures what the shard would actually have mispredicted. Every
        // observation is scored (cache hits included): a step change shows
        // up on repeated queries too, and dedup must not blind the
        // detector to them.
        if let Some(lp) = self.local.predict(&features) {
            self.drift
                .observe_residual(lp.log_mean, lp.log_std(), to_log_space(actual_secs));
        }
        self.cache.record(key, actual_secs);
        // Dedup via the cache (paper §4.3): only cache *misses* enter the
        // local training pool.
        if !was_cached || !self.config.routing.dedup_via_cache {
            self.pool.add(features, actual_secs);
            // Retrain interception: the fault oracle is consulted only when
            // this observation would actually trigger a retrain, so the
            // injection ledger lines up one-to-one with retrain attempts.
            let fault = if self.local.retrain_due_after_next(&self.pool) {
                self.faults.as_ref().and_then(|f| f.retrain_fault())
            } else {
                None
            };
            match fault {
                Some(RetrainFault::Poisoned) => {
                    // Skip the retrain; the stale ensemble keeps serving and
                    // the training debt stays due for the next observation.
                    self.degraded.retrains_poisoned += 1;
                    self.local.defer_retrain();
                }
                Some(RetrainFault::Slowed) => {
                    // The hook models the latency itself (e.g. it slept
                    // before returning); the retrain then proceeds normally.
                    self.degraded.retrains_slowed += 1;
                    self.local.note_observation(&self.pool);
                }
                None => self.local.note_observation(&self.pool),
            }
        }
    }

    fn name(&self) -> &'static str {
        "Stage"
    }

    fn approx_size_bytes(&self) -> usize {
        let (c, p, l) = self.size_breakdown();
        std::mem::size_of::<Self>() + c + p + l
    }
}

// Thread-safety contract of the shard-parallel fleet replay engine,
// checked at compile time: every per-instance predictor moves into a worker
// thread (`Send`), and the one fleet-trained global model is shared across
// workers behind an `Arc` (`Send + Sync`). A field change that silently
// breaks one of these bounds fails the build here rather than at a distant
// `thread::scope` call site.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GlobalModel>();
    assert_send::<StagePredictor>();
    assert_send::<crate::autowlm::AutoWlmPredictor>();
    assert_send::<LocalModel>();
    assert_send::<ExecTimeCache>();
    assert_send::<TrainingPool>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::global::{plan_to_tree_sample, GlobalModelConfig};
    use crate::local::LocalModelConfig;
    use stage_gbdt::{EnsembleParams, NgBoostParams};
    use stage_plan::{PlanBuilder, S3Format};

    fn plan(rows: f64) -> PhysicalPlan {
        PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .hash_aggregate(0.01)
            .finish()
    }

    fn sys() -> SystemContext {
        SystemContext::empty(2)
    }

    fn quick_config() -> StageConfig {
        StageConfig {
            local: LocalModelConfig {
                ensemble: EnsembleParams {
                    n_members: 4,
                    member: NgBoostParams {
                        n_estimators: 25,
                        ..NgBoostParams::default()
                    },
                    seed: 5,
                },
                min_train_examples: 20,
                retrain_interval: 60,
            },
            ..StageConfig::default()
        }
    }

    #[test]
    fn cold_start_default_then_cache_hit() {
        let mut s = StagePredictor::new(quick_config());
        let q = plan(1e5);
        let p1 = s.predict(&q, &sys());
        assert_eq!(p1.source, PredictionSource::Default);
        s.observe(&q, &sys(), 7.0);
        let p2 = s.predict(&q, &sys());
        assert_eq!(p2.source, PredictionSource::Cache);
        assert!((p2.exec_secs - 7.0).abs() < 1e-9);
        assert_eq!(s.stats().cache, 1);
        assert_eq!(s.stats().default, 1);
    }

    #[test]
    fn cache_blends_mean_and_last() {
        let mut s = StagePredictor::new(quick_config());
        let q = plan(2e5);
        s.observe(&q, &sys(), 10.0);
        s.observe(&q, &sys(), 20.0);
        // mean 15, last 20 -> 0.8*15 + 0.2*20 = 16
        let p = s.predict(&q, &sys());
        assert!((p.exec_secs - 16.0).abs() < 1e-9);
    }

    #[test]
    fn local_model_serves_unseen_similar_queries() {
        let mut s = StagePredictor::new(quick_config());
        // Distinct plans (different sizes) so every observation misses the
        // cache and feeds the pool.
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(s.local().is_trained());
        // An unseen size: must be served by the local model, not default.
        let p = s.predict(&plan(3.33e5), &sys());
        assert_eq!(p.source, PredictionSource::Local);
        assert!(p.log_variance.is_some());
        assert!(p.exec_secs > 0.0);
    }

    #[test]
    fn dedup_keeps_repeats_out_of_pool() {
        let mut s = StagePredictor::new(quick_config());
        let q = plan(1e5);
        for _ in 0..10 {
            s.observe(&q, &sys(), 1.0);
        }
        assert_eq!(s.pool().len(), 1, "only the first observation enters");

        let mut cfg = quick_config();
        cfg.routing.dedup_via_cache = false;
        let mut s2 = StagePredictor::new(cfg);
        for _ in 0..10 {
            s2.observe(&q, &sys(), 1.0);
        }
        assert_eq!(s2.pool().len(), 10, "ablation keeps repeats");
    }

    #[test]
    fn global_serves_cold_start_when_attached() {
        // Train a tiny global model on plans of varying size.
        let samples: Vec<_> = (1..=40)
            .map(|i| {
                let rows = i as f64 * 1e4;
                plan_to_tree_sample(&plan(rows), &sys(), rows / 1e5)
            })
            .collect();
        let gcfg = GlobalModelConfig {
            hidden: 16,
            gcn_layers: 2,
            dropout: 0.0,
            epochs: 15,
            ..GlobalModelConfig::default()
        };
        let global = Arc::new(GlobalModel::train(&samples, 2, &gcfg));
        let mut s = StagePredictor::with_global(quick_config(), global);
        let p = s.predict(&plan(2e5), &sys());
        assert_eq!(p.source, PredictionSource::Global);
        assert_eq!(s.stats().global, 1);
    }

    #[test]
    fn short_predictions_never_escalate() {
        // Local model trained on uniformly short queries -> predictions
        // stay below the short-circuit threshold -> no global calls even
        // though a global model is attached.
        let samples: Vec<_> = (1..=30)
            .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e3), &sys(), 0.05))
            .collect();
        let gcfg = GlobalModelConfig {
            hidden: 8,
            gcn_layers: 1,
            dropout: 0.0,
            epochs: 5,
            ..GlobalModelConfig::default()
        };
        let global = Arc::new(GlobalModel::train(&samples, 2, &gcfg));
        let mut s = StagePredictor::with_global(quick_config(), global);
        for i in 1..=60 {
            s.observe(&plan(i as f64 * 1e3), &sys(), 0.05);
        }
        assert!(s.local().is_trained());
        let before_global = s.stats().global;
        for i in 61..=80 {
            let p = s.predict(&plan(i as f64 * 1e3), &sys());
            assert!(p.exec_secs < 5.0);
        }
        assert_eq!(
            s.stats().global,
            before_global,
            "short queries must not reach the global model"
        );
    }

    #[test]
    fn stats_fractions_sum_to_one() {
        let mut s = StagePredictor::new(quick_config());
        let q = plan(1e5);
        s.predict(&q, &sys());
        s.observe(&q, &sys(), 1.0);
        s.predict(&q, &sys());
        let st = s.stats();
        let sum: f64 = [
            PredictionSource::Cache,
            PredictionSource::Local,
            PredictionSource::Global,
            PredictionSource::Default,
        ]
        .iter()
        .map(|&src| st.fraction(src))
        .sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(st.total(), 2);
    }

    #[test]
    fn env_features_extend_local_input() {
        let mut cfg = quick_config();
        cfg.env_features = true;
        let mut s = StagePredictor::new(cfg);
        // System context with a varying concurrency feature.
        let mk_sys = |conc: f64| SystemContext {
            features: vec![conc, 1.0],
        };
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &mk_sys((i % 5) as f64), rows / 1e5);
        }
        assert!(s.local().is_trained());
        let p = s.predict(&plan(3.33e5), &mk_sys(2.0));
        assert_eq!(p.source, PredictionSource::Local);
        assert!(p.exec_secs.is_finite() && p.exec_secs >= 0.0);
        // The flag must be off by default (published Stage semantics).
        assert!(!StageConfig::default().env_features);
    }

    #[test]
    fn predict_batch_matches_scalar_routing_and_counters() {
        // Warm a predictor so the batch exercises all three live sources:
        // repeats (cache hits), unseen sizes (local), untrained -> handled
        // by the cold-start case below.
        let mut warm = StagePredictor::new(quick_config());
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            warm.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(warm.local().is_trained());
        // Two identical predictors from the same snapshot.
        let mut scalar = StagePredictor::from_snapshot(warm.snapshot());
        let mut batched = StagePredictor::from_snapshot(warm.snapshot());
        let plans: Vec<PhysicalPlan> = [1e4, 3.33e5, 2e4, 7.77e5, 1e4, 5e4]
            .iter()
            .map(|&r| plan(r))
            .collect();
        let from_scalar: Vec<Prediction> =
            plans.iter().map(|q| scalar.predict(q, &sys())).collect();
        let from_batch = batched.predict_batch(&plans, &sys());
        assert_eq!(from_batch, from_scalar);
        assert_eq!(batched.stats(), scalar.stats());
        assert_eq!(batched.cache().hits(), scalar.cache().hits());
        assert_eq!(batched.cache().misses(), scalar.cache().misses());
        // The batch hit multiple sources (otherwise this test is vacuous).
        assert!(batched.stats().cache > 0);
        assert!(batched.stats().local > 0);
    }

    #[test]
    fn predict_batch_cold_start_and_empty() {
        let mut s = StagePredictor::new(quick_config());
        assert!(s.predict_batch(&[], &sys()).is_empty());
        let plans = vec![plan(1e5), plan(2e5)];
        let preds = s.predict_batch(&plans, &sys());
        assert_eq!(preds.len(), 2);
        for p in &preds {
            assert_eq!(p.source, PredictionSource::Default);
            assert!((p.exec_secs - DEFAULT_PREDICTION_SECS).abs() < 1e-12);
        }
        assert_eq!(s.stats().default, 2);
    }

    #[test]
    fn size_breakdown_components() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=40 {
            s.observe(&plan(i as f64 * 1e4), &sys(), 1.0);
        }
        let (c, p, l) = s.size_breakdown();
        assert!(c > 0 && p > 0 && l > 0);
        assert!(s.approx_size_bytes() >= c + p + l);
        assert_eq!(s.name(), "Stage");
    }

    use std::sync::atomic::{AtomicU64, Ordering};

    /// Budgeted fault oracle: each kind fires for its next N consults.
    #[derive(Default)]
    struct ScriptedComponentFaults {
        local_down: AtomicU64,
        global_down: AtomicU64,
        poison: AtomicU64,
        slow: AtomicU64,
    }

    impl ScriptedComponentFaults {
        fn take(budget: &AtomicU64) -> bool {
            budget
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                .is_ok()
        }
    }

    impl ComponentFaults for ScriptedComponentFaults {
        fn local_unavailable(&self) -> bool {
            Self::take(&self.local_down)
        }
        fn global_unavailable(&self) -> bool {
            Self::take(&self.global_down)
        }
        fn retrain_fault(&self) -> Option<RetrainFault> {
            if Self::take(&self.poison) {
                Some(RetrainFault::Poisoned)
            } else if Self::take(&self.slow) {
                Some(RetrainFault::Slowed)
            } else {
                None
            }
        }
    }

    #[test]
    fn local_failover_degrades_to_default_then_heals() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(s.local().is_trained());
        let faults = Arc::new(ScriptedComponentFaults {
            local_down: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        });
        s.set_component_faults(faults);
        // Faulted call: trained local model bypassed, default answer.
        let p = s.predict(&plan(3.33e5), &sys());
        assert_eq!(p.source, PredictionSource::Default);
        assert_eq!(s.degraded_stats().local_failover, 1);
        // Budget spent: the very next call is served by the local tier.
        let p = s.predict(&plan(3.33e5), &sys());
        assert_eq!(p.source, PredictionSource::Local);
        assert_eq!(s.degraded_stats().local_failover, 1);
    }

    #[test]
    fn global_failover_degrades_to_default_then_heals() {
        let samples: Vec<_> = (1..=40)
            .map(|i| {
                let rows = i as f64 * 1e4;
                plan_to_tree_sample(&plan(rows), &sys(), rows / 1e5)
            })
            .collect();
        let gcfg = GlobalModelConfig {
            hidden: 16,
            gcn_layers: 2,
            dropout: 0.0,
            epochs: 15,
            ..GlobalModelConfig::default()
        };
        let global = Arc::new(GlobalModel::train(&samples, 2, &gcfg));
        let mut s = StagePredictor::with_global(quick_config(), global);
        let faults = Arc::new(ScriptedComponentFaults {
            global_down: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        });
        s.set_component_faults(faults);
        // Cold start wants the global tier; the fault degrades it to the
        // default answer instead of an error.
        let p = s.predict(&plan(2e5), &sys());
        assert_eq!(p.source, PredictionSource::Default);
        assert_eq!(s.degraded_stats().global_failover, 1);
        assert_eq!(s.stats().global, 0);
        // Healed: same query now reaches the global model.
        let p = s.predict(&plan(2.5e5), &sys());
        assert_eq!(p.source, PredictionSource::Global);
        assert_eq!(s.degraded_stats().global_failover, 1);
    }

    #[test]
    fn batch_local_failover_counts_once_per_batch() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(s.local().is_trained());
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            local_down: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        }));
        let plans = vec![plan(3.33e5), plan(7.77e5)];
        let preds = s.predict_batch(&plans, &sys());
        for p in &preds {
            assert_eq!(p.source, PredictionSource::Default);
        }
        assert_eq!(
            s.degraded_stats().local_failover,
            1,
            "one consult per batch that would use the local tier"
        );
        // An all-hit batch must not consult the oracle at all.
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            local_down: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        }));
        let q = plan(1e4);
        let hits = s.predict_batch(&[q.clone(), q], &sys());
        for p in &hits {
            assert_eq!(p.source, PredictionSource::Cache);
        }
        assert_eq!(s.degraded_stats().local_failover, 1);
    }

    #[test]
    fn poisoned_retrain_defers_until_fault_clears() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=19 {
            s.observe(&plan(i as f64 * 1e4), &sys(), 1.0);
        }
        assert!(!s.local().is_trained());
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            poison: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        }));
        // 20th distinct observation reaches min_train_examples, but the
        // retrain is poisoned: skipped, debt stays due.
        s.observe(&plan(20e4), &sys(), 1.0);
        assert!(!s.local().is_trained());
        assert_eq!(s.degraded_stats().retrains_poisoned, 1);
        // Fault budget spent: the next observation trains.
        s.observe(&plan(21e4), &sys(), 1.0);
        assert!(s.local().is_trained());
        assert_eq!(s.degraded_stats().retrains_poisoned, 1);
    }

    #[test]
    fn slowed_retrain_still_trains() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=19 {
            s.observe(&plan(i as f64 * 1e4), &sys(), 1.0);
        }
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            slow: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        }));
        s.observe(&plan(20e4), &sys(), 1.0);
        assert!(s.local().is_trained(), "a slowed retrain still completes");
        assert_eq!(s.degraded_stats().retrains_slowed, 1);
        assert_eq!(s.degraded_stats().total(), 1);
    }

    #[test]
    fn drift_detection_forces_retrain_and_recovers() {
        let mut s = StagePredictor::new(quick_config());
        // Steady workload: exec time tracks row count. The default config's
        // warm-up (`min_samples`) must absorb the noisy residuals right
        // after the first training without firing.
        let mut max_cusum = 0.0f64;
        for i in 1..=120 {
            let rows = (i % 40 + 1) as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
            max_cusum = max_cusum.max(s.drift().cusum_level());
        }
        assert!(s.local().is_trained());
        assert!(
            !s.drift_detected(),
            "steady workload must not trigger (max cusum {max_cusum:.2})"
        );
        // Step change: the same plans now run 5x slower.
        let mut shifted = 0u64;
        while !s.drift_detected() && shifted < 400 {
            let rows = (shifted % 40 + 1) as f64 * 1e4;
            s.observe(&plan(rows), &sys(), 5.0 * rows / 1e5);
            shifted += 1;
        }
        assert!(s.drift_detected(), "detector must fire on a 5x shift");
        assert_eq!(s.drift().detections(), 1);
        // The health loop's response: force an out-of-band retrain.
        assert!(s.force_retrain());
        assert!(!s.drift_detected(), "forced retrain clears the latch");
        assert_eq!(s.drift().forced_retrains(), 1);
    }

    #[test]
    fn force_retrain_on_empty_pool_is_a_noop() {
        let mut s = StagePredictor::new(quick_config());
        assert!(!s.force_retrain());
        assert_eq!(s.drift().forced_retrains(), 0);
    }

    #[test]
    fn calibrated_interval_brackets_and_widens_when_degraded() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=60 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
        }
        let p = s.predict(&plan(3.33e5), &sys());
        assert_eq!(p.source, PredictionSource::Local);
        let (lo, hi) = s
            .calibrated_interval(&p)
            .expect("local answers carry variance");
        assert!(lo <= p.exec_secs && p.exec_secs <= hi, "({lo}, {hi})");
        // A cache answer has no variance, hence no interval.
        let q = plan(1e4);
        let pc = s.predict(&q, &sys());
        assert_eq!(pc.source, PredictionSource::Cache);
        assert_eq!(s.calibrated_interval(&pc), None);
        // A degraded event widens the next intervals.
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            local_down: AtomicU64::new(1),
            ..ScriptedComponentFaults::default()
        }));
        let pd = s.predict(&plan(7.77e5), &sys());
        assert_eq!(pd.source, PredictionSource::Default);
        let _ = s.calibrated_interval(&pd);
        assert!(s.drift().degraded_active());
        let (wlo, whi) = s.calibrated_interval(&p).expect("same local prediction");
        assert!(
            whi - wlo > hi - lo,
            "degraded interval ({wlo}, {whi}) must be wider than ({lo}, {hi})"
        );
    }

    #[test]
    fn snapshot_round_trips_calibration_state() {
        let mut s = StagePredictor::new(quick_config());
        for i in 1..=70 {
            let rows = i as f64 * 1e4;
            s.observe(&plan(rows), &sys(), rows / 1e5);
        }
        assert!(s.drift().residuals_seen() > 0);
        let restored = StagePredictor::from_snapshot(s.snapshot());
        assert_eq!(restored.drift(), s.drift());
        assert_eq!(restored.drift().coverage(), s.drift().coverage());
    }

    #[test]
    fn snapshot_round_trips_degraded_counters() {
        let mut s = StagePredictor::new(quick_config());
        s.set_component_faults(Arc::new(ScriptedComponentFaults {
            local_down: AtomicU64::new(2),
            ..ScriptedComponentFaults::default()
        }));
        s.predict(&plan(1e5), &sys());
        s.predict(&plan(2e5), &sys());
        assert_eq!(s.degraded_stats().local_failover, 2);
        let restored = StagePredictor::from_snapshot(s.snapshot());
        assert_eq!(restored.degraded_stats(), s.degraded_stats());
        assert_eq!(restored.stats(), s.stats());
    }
}
