//! The artefact-store persistence path must be a drop-in replacement for
//! the serde path: a snapshot written as a store file and mapped back must
//! answer every prediction **bit-identically** to the same snapshot pushed
//! through the JSON envelope — the serving layer routes on exact
//! thresholds, so even 1-ulp drift would route requests differently after
//! a warm restart. The hostile-input half of this file proves restore
//! never panics and never silently half-loads: truncation at every section
//! boundary, single-bit flips across the whole file, and wrong
//! magic/version all surface as typed [`RestoreError`]s and quarantine the
//! file.

use proptest::prelude::*;
use stage_core::persist::{load_stage, save_stage, RestoreError};
use stage_core::predictor::{ExecTimePredictor, SystemContext};
use stage_core::stage::{StageConfig, StagePredictor, StageSnapshot};
use stage_core::storefmt::{
    load_stage_store, save_stage_store, save_stage_store_dirty, StoreCheckpoint,
};
use stage_core::{CacheConfig, LocalModelConfig, PoolConfig};
use stage_gbdt::{EnsembleParams, NgBoostParams};
use stage_plan::{PlanBuilder, S3Format};
use std::path::{Path, PathBuf};

fn plan(rows: f64) -> stage_plan::PhysicalPlan {
    PlanBuilder::select()
        .scan("t", S3Format::Local, rows, 64.0)
        .hash_aggregate(0.01)
        .finish()
}

/// A config small enough that retraining inside a property test is cheap
/// but real: a trained 2-member ensemble, a populated cache and pool.
fn small_config(seed: u64) -> StageConfig {
    StageConfig {
        cache: CacheConfig::default(),
        pool: PoolConfig::default(),
        local: LocalModelConfig {
            ensemble: EnsembleParams {
                n_members: 2,
                member: NgBoostParams {
                    n_estimators: 8,
                    ..NgBoostParams::default()
                },
                seed,
            },
            min_train_examples: 20,
            retrain_interval: 25,
        },
        ..StageConfig::default()
    }
}

/// Drives a predictor through enough traffic to populate all three tiers,
/// returning it with a trained ensemble, warm cache, and non-empty pool.
fn warm_predictor(seed: u64, n_obs: usize) -> StagePredictor {
    let mut s = StagePredictor::new(small_config(seed));
    s.set_instance_salt(seed ^ 0x5741_524d);
    let sys = SystemContext::empty(2);
    for i in 1..=n_obs {
        // Mostly unique plans (so the de-duplicated pool actually grows
        // past `min_train_examples` and the ensemble trains), with every
        // fourth a repeat to exercise warm cache entries.
        let rows = if i % 4 == 0 { 5e4 } else { i as f64 * 1e4 };
        let q = plan(rows);
        s.predict(&q, &sys);
        s.observe(&q, &sys, (i % 7) as f64 * 0.35 + 0.05);
    }
    s
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stage-storefmt-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap().to_os_string();
    name.push(".quarantine");
    path.with_file_name(name)
}

/// Runs the same probe sequence on both predictors and asserts every
/// prediction matches bit-for-bit (exec time, variance, source).
fn assert_bit_identical(a: &mut StagePredictor, b: &mut StagePredictor, tag: &str) {
    let sys = SystemContext::empty(2);
    for i in 1..=24 {
        let q = plan((i % 17 + 1) as f64 * 7.3e3);
        let pa = a.predict(&q, &sys);
        let pb = b.predict(&q, &sys);
        assert_eq!(
            pa.exec_secs.to_bits(),
            pb.exec_secs.to_bits(),
            "{tag}: probe {i} exec_secs diverged"
        );
        assert_eq!(
            pa.log_variance.map(f64::to_bits),
            pb.log_variance.map(f64::to_bits),
            "{tag}: probe {i} variance diverged"
        );
        assert_eq!(pa.source, pb.source, "{tag}: probe {i} source diverged");
    }
    assert_eq!(a.stats(), b.stats(), "{tag}: routing counters diverged");
}

fn store_round_trip(snap: &StageSnapshot, dir: &Path) -> StageSnapshot {
    let path = dir.join("snapshot.store");
    save_stage_store(snap, &path, None).unwrap();
    load_stage_store(&path, None).unwrap()
}

fn serde_round_trip(snap: &StageSnapshot) -> StageSnapshot {
    let mut buf = Vec::new();
    save_stage(snap, &mut buf).unwrap();
    load_stage(buf.as_slice()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// store-file restore == serde restore == the original, bit for bit,
    /// across randomly seeded trained predictors.
    #[test]
    fn store_restore_bit_identical_to_serde(seed in 0u64..500, n_obs in 25usize..60) {
        let dir = fresh_dir(&format!("prop-{seed}-{n_obs}"));
        let original = warm_predictor(seed, n_obs);
        let snap = original.snapshot();
        // The scenario must exercise a real trained ensemble, not just the
        // cache tier.
        prop_assert!(snap.local.is_trained(), "warm-up never trained the ensemble");

        let mut via_store = StagePredictor::from_snapshot(store_round_trip(&snap, &dir));
        let mut via_serde = StagePredictor::from_snapshot(serde_round_trip(&snap));
        assert_bit_identical(&mut via_serde, &mut via_store, "store vs serde");
        // The drift sentinel / conformal calibrator (CALIBRATION section)
        // must survive both envelopes bit-exactly: its Welford baseline and
        // score ring drive interval widths after a warm restart.
        prop_assert!(
            via_store.drift() == &snap.calibration && via_serde.drift() == &snap.calibration,
            "calibration state diverged across restore"
        );

        // Both restored predictors keep learning identically (same retrain
        // cadence, same seeds) — restore is not a frozen copy.
        let sys = SystemContext::empty(2);
        for i in 1..=30 {
            let q = plan((i % 9 + 1) as f64 * 2.1e4);
            via_serde.observe(&q, &sys, i as f64 * 0.2);
            via_store.observe(&q, &sys, i as f64 * 0.2);
        }
        assert_bit_identical(&mut via_serde, &mut via_store, "post-restore learning");
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Truncating the file at (and one byte before) every section boundary is
/// a typed error — never a panic, never an `Ok` with missing state — and
/// quarantines the file.
#[test]
fn truncation_at_every_section_boundary_is_typed_and_quarantined() {
    let dir = fresh_dir("truncate");
    let path = dir.join("snapshot.store");
    let snap = warm_predictor(3, 40).snapshot();
    save_stage_store(&snap, &path, None).unwrap();
    let full = std::fs::read(&path).unwrap();

    // Boundaries: mid-header, end of header, each table entry, each
    // section's start/end, and one byte short of the full file.
    let sections = stage_core::storefmt::snapshot_sections(&snap);
    let mut cuts = vec![0, 7, 35, stage_store::HEADER_LEN];
    for i in 0..=sections.len() {
        cuts.push(stage_store::HEADER_LEN + i * stage_store::ENTRY_LEN);
    }
    let view = stage_store::StoreView::parse(&full).unwrap();
    for id in view.section_ids() {
        let sec = view.section(id).unwrap();
        let offset = sec.as_ptr() as usize - full.as_ptr() as usize;
        cuts.extend([offset, offset + sec.len(), offset + sec.len() - 1]);
    }
    cuts.push(full.len() - 1);
    cuts.retain(|&c| c < full.len());
    cuts.sort_unstable();
    cuts.dedup();

    for cut in cuts {
        std::fs::write(&path, &full[..cut]).unwrap();
        let err = load_stage_store(&path, None).unwrap_err();
        assert!(
            !matches!(err, RestoreError::Io(_)),
            "cut at {cut}: expected damage, got io error {err}"
        );
        assert!(!path.exists(), "cut at {cut}: damaged file left in place");
        let q = quarantine_path(&path);
        assert!(q.exists(), "cut at {cut}: no quarantine file");
        let _ = std::fs::remove_file(&q);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-bit flips across the file (sampled stride) are always caught by
/// a CRC (or structural check) — restore never returns `Ok` on a damaged
/// image and never panics.
#[test]
fn bit_flips_never_restore_silently() {
    let dir = fresh_dir("bitflip");
    let path = dir.join("snapshot.store");
    let snap = warm_predictor(4, 35).snapshot();
    save_stage_store(&snap, &path, None).unwrap();
    let full = std::fs::read(&path).unwrap();

    let stride = (full.len() / 97).max(1);
    for byte in (0..full.len()).step_by(stride) {
        let mut damaged = full.clone();
        damaged[byte] ^= 1 << (byte % 8);
        std::fs::write(&path, &damaged).unwrap();
        let err = load_stage_store(&path, None).unwrap_err();
        assert!(
            !matches!(err, RestoreError::Io(_)),
            "flip at {byte}: expected damage, got io error {err}"
        );
        let _ = std::fs::remove_file(quarantine_path(&path));
        let _ = std::fs::remove_file(&path);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Wrong magic and an unsupported version (with a *valid* header CRC, so
/// only the version check can object) are their own typed errors.
#[test]
fn wrong_magic_and_version_are_typed() {
    let dir = fresh_dir("magic");
    let path = dir.join("snapshot.store");
    let snap = warm_predictor(5, 30).snapshot();

    save_stage_store(&snap, &path, None).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[0] = b'X';
    std::fs::write(&path, &bytes).unwrap();
    let err = load_stage_store(&path, None).unwrap_err();
    assert!(matches!(err, RestoreError::MissingHeader), "{err}");
    assert!(quarantine_path(&path).exists());
    let _ = std::fs::remove_file(quarantine_path(&path));

    save_stage_store(&snap, &path, None).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    let fixed_crc = stage_store::crc32(&bytes[..36]);
    bytes[36..40].copy_from_slice(&fixed_crc.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    let err = load_stage_store(&path, None).unwrap_err();
    assert!(
        matches!(err, RestoreError::UnsupportedVersion { found: 99, .. }),
        "{err}"
    );
    assert!(quarantine_path(&path).exists());

    // A missing file stays a benign cold start (no quarantine).
    let gone = dir.join("never-written.store");
    assert!(load_stage_store(&gone, None).unwrap_err().is_not_found());
    let _ = std::fs::remove_dir_all(&dir);
}

/// Dirty-section checkpoints: an unchanged snapshot writes nothing, a
/// small change rewrites only the touched sections, and the updated file
/// restores to the new state.
#[test]
fn dirty_checkpoint_skips_clean_sections() {
    let dir = fresh_dir("dirty");
    let path = dir.join("snapshot.store");
    let mut s = warm_predictor(6, 40);
    let snap = s.snapshot();

    // First checkpoint: no file yet, full write.
    assert_eq!(
        save_stage_store_dirty(&snap, &path).unwrap(),
        StoreCheckpoint::Full
    );
    // Identical snapshot: byte-identical sections, nothing written.
    assert_eq!(
        save_stage_store_dirty(&snap, &path).unwrap(),
        StoreCheckpoint::Clean
    );

    // A little more traffic dirties cache/pool/stats but not the encoded
    // local model (no retrain boundary crossed) or config.
    let sys = SystemContext::empty(2);
    s.predict(&plan(3.3e4), &sys);
    s.observe(&plan(3.3e4), &sys, 0.4);
    let snap2 = s.snapshot();
    match save_stage_store_dirty(&snap2, &path).unwrap() {
        StoreCheckpoint::Sections { dirty } => {
            // Cache/pool/stats plus the drift calibrator (which absorbs the
            // new residual) may rewrite; the encoded local model and config
            // must not.
            assert!(
                (1..6).contains(&dirty),
                "expected a partial rewrite, got {dirty} dirty sections"
            );
        }
        other => panic!("expected a section-granular update, got {other:?}"),
    }

    // The in-place-updated file restores to the *new* snapshot.
    let mut restored = StagePredictor::from_snapshot(load_stage_store(&path, None).unwrap());
    let mut reference = StagePredictor::from_snapshot(snap2);
    assert_bit_identical(&mut reference, &mut restored, "after dirty update");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The CALIBRATION section specifically: corrupting any byte inside it is
/// a typed error + quarantine (never a silently reset calibrator), and a
/// legacy file written *without* the section restores as a cold sentinel.
#[test]
fn calibration_section_corruption_quarantines_and_absence_is_cold_start() {
    use stage_core::storefmt::SECTION_CALIBRATION;
    use stage_core::DriftSentinel;

    let dir = fresh_dir("calibration");
    let path = dir.join("snapshot.store");
    let sys = SystemContext::empty(2);
    let mut s = warm_predictor(7, 45);
    // Extra steady traffic so the calibrator holds a non-trivial score ring.
    for i in 1..=40 {
        let q = plan((i % 11 + 1) as f64 * 9.1e3);
        s.observe(&q, &sys, (i % 5) as f64 * 0.3 + 0.1);
    }
    let snap = s.snapshot();
    assert!(
        snap.calibration.residuals_seen() > 0,
        "warm-up never fed the drift sentinel"
    );
    save_stage_store(&snap, &path, None).unwrap();
    let full = std::fs::read(&path).unwrap();

    // Flip one byte in the middle of the CALIBRATION section payload.
    let view = stage_store::StoreView::parse(&full).unwrap();
    let sec = view.section(SECTION_CALIBRATION).expect("section missing");
    assert!(!sec.is_empty());
    let offset = sec.as_ptr() as usize - full.as_ptr() as usize;
    let mut damaged = full.clone();
    damaged[offset + sec.len() / 2] ^= 0x40;
    std::fs::write(&path, &damaged).unwrap();
    let err = load_stage_store(&path, None).unwrap_err();
    assert!(
        !matches!(err, RestoreError::Io(_)),
        "expected typed damage, got {err}"
    );
    assert!(quarantine_path(&path).exists(), "no quarantine file");
    let _ = std::fs::remove_file(quarantine_path(&path));

    // A pre-calibration-era file (section absent) restores with a default
    // sentinel rather than failing: serde-era parity for old snapshots.
    let legacy: Vec<(u32, Vec<u8>)> = stage_core::storefmt::snapshot_sections(&snap)
        .into_iter()
        .filter(|(id, _)| *id != SECTION_CALIBRATION)
        .collect();
    std::fs::write(&path, stage_store::build_file(&legacy, 0)).unwrap();
    let restored = load_stage_store(&path, None).unwrap();
    assert_eq!(restored.calibration, DriftSentinel::default());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The global-model store file round-trips the model bit-exactly and
/// carries the caller's generation stamp, readable from the header alone.
#[test]
fn global_store_round_trip_and_generation_poll() {
    use stage_core::global::{plan_to_tree_sample, GlobalModel, GlobalModelConfig};
    use stage_core::storefmt::{load_global_store, save_global_store, store_generation};

    let dir = fresh_dir("global");
    let path = dir.join("global.store");
    let sys = SystemContext::empty(2);
    let samples: Vec<_> = (1..=25)
        .map(|i| plan_to_tree_sample(&plan(i as f64 * 1e4), &sys, i as f64 * 0.2))
        .collect();
    let cfg = GlobalModelConfig {
        hidden: 8,
        gcn_layers: 1,
        epochs: 3,
        ..GlobalModelConfig::default()
    };
    let model = GlobalModel::train(&samples, 2, &cfg);

    save_global_store(&model, &path, 7, None).unwrap();
    assert_eq!(store_generation(&path).unwrap(), 7);
    let (restored, generation) = load_global_store(&path, None).unwrap();
    assert_eq!(generation, 7);
    let probe = plan(3.3e5);
    assert_eq!(
        model.predict(&probe, &sys).to_bits(),
        restored.predict(&probe, &sys).to_bits()
    );

    // A newer artefact bumps the polled generation.
    save_global_store(&model, &path, 8, None).unwrap();
    assert_eq!(store_generation(&path).unwrap(), 8);
    let _ = std::fs::remove_dir_all(&dir);
}
