//! `stage-store`: the memory-mapped artefact store.
//!
//! A store file is a versioned, checksummed container of independently
//! addressable **sections** — flat byte ranges identified by a numeric id,
//! each carrying its own crc32 and a reserved capacity. The layout is
//! designed so a reader can `mmap(2)` the file and consume primitive arrays
//! in place (little-endian, 8-byte aligned), and so a checkpointer can
//! rewrite only the sections that changed (an in-place write into the
//! reserved slot plus a table update) instead of rewriting the whole
//! artefact. See `DESIGN.md` §13 for the on-disk layout and the
//! dirty-section checkpoint protocol.
//!
//! The crate is std-only. The only platform surface is a minimal
//! `mmap(2)`/`msync(2)`/`munmap(2)` FFI in [`mmap`], in the same style as
//! `stage-serve`'s `poll(2)` seam. Everything else is plain byte
//! manipulation, which keeps the format testable without touching a
//! filesystem.
//!
//! This crate sits below `stage-core` in the dependency graph: the crc32
//! implementation lives here and `stage_core::persist` re-exports it, so
//! the wire protocol and the artefact envelopes keep checksumming through
//! one shared function.
//!
//! This file is inside `stage-lint`'s panic-freedom scope: stores are
//! opened on the serving restore path, where hostile bytes must produce
//! typed errors, never panics.

pub mod format;
pub mod mmap;

pub use format::{
    build_file, read_generation, MappedStore, SectionReader, SectionWriter, StoreError,
    StoreUpdater, StoreView, UpdateOutcome, ENTRY_LEN, HEADER_LEN, MAGIC, STORE_VERSION,
};
pub use mmap::Mapping;

/// IEEE crc32 (reflected, polynomial `0xEDB8_8320`), slice-by-8. Output
/// is bit-identical to the bitwise implementation `stage_core::persist`
/// shipped through PR 6 — the frame checksums of the binary wire protocol
/// and the `stage-artefact` envelopes must not change under an
/// implementation swap (pinned by tests on known vectors).
///
/// Restore verifies every section's checksum before a shard is allowed to
/// serve from a mapped store, so this loop is on the cold-start critical
/// path; eight bytes per iteration keeps the integrity sweep from eating
/// the latency the mapping saved.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let &[b0, b1, b2, b3, b4, b5, b6, b7] = chunk else {
            break; // unreachable: chunks_exact(8) yields exactly 8 bytes
        };
        let lo = u32::from_le_bytes([b0, b1, b2, b3]) ^ crc;
        let hi = u32::from_le_bytes([b4, b5, b6, b7]);
        crc = tab(7, lo)
            ^ tab(6, lo >> 8)
            ^ tab(5, lo >> 16)
            ^ tab(4, lo >> 24)
            ^ tab(3, hi)
            ^ tab(2, hi >> 8)
            ^ tab(1, hi >> 16)
            ^ tab(0, hi >> 24);
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ tab(0, crc ^ u32::from(b));
    }
    !crc
}

/// One slice-by-8 table lookup; both indices are masked into bounds.
#[inline(always)]
fn tab(k: usize, byte: u32) -> u32 {
    // lint:allow(no-panic): k is masked to 0..8 and byte to 0..256, matching the table dimensions
    CRC_TABLES[k & 7][(byte & 0xFF) as usize]
}

/// Slice-by-8 lookup tables for [`crc32`], built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` maps a
/// byte to its contribution from `k` positions deeper in the 8-byte chunk.
static CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(no-panic): compile-time loop with i < 256; a slip is a build error
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            // lint:allow(no-panic): compile-time loops with k < 8 and i < 256; a slip is a build error
            let prev = tables[k - 1][i];
            // lint:allow(no-panic): compile-time loops with k < 8 and i < 256; a slip is a build error
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // Same vectors `stage_core::persist` pinned for the bitwise
        // implementation: the table-driven swap must be invisible.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"stage"), crc32(b"stage"));
        assert_ne!(crc32(b"stage"), crc32(b"stagf"));
    }

    #[test]
    fn crc32_matches_bitwise_reference() {
        fn bitwise(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        let mut data = Vec::new();
        for i in 0..1024u32 {
            data.push((i.wrapping_mul(2654435761) >> 13) as u8);
            assert_eq!(crc32(&data), bitwise(&data));
        }
    }
}
