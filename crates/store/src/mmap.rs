//! Minimal `mmap(2)` / `msync(2)` / `munmap(2)` FFI — the same thin-seam
//! style as `stage-serve`'s `poll(2)`: `#[repr(C)]`-free (the calls take
//! only scalars and pointers), every unsafe block preceded by the exact
//! invariants that make it sound, and errors surfaced as `io::Error`.
//!
//! This file is inside `stage-lint`'s panic-freedom scope, and its unsafe
//! blocks carry mandatory `unsafe-seam` allow pragmas — the lint requires
//! a stated reason wherever the workspace crosses the FFI boundary.

use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

const PROT_READ: core::ffi::c_int = 0x1;
const PROT_WRITE: core::ffi::c_int = 0x2;
const MAP_SHARED: core::ffi::c_int = 0x01;
const MS_SYNC: core::ffi::c_int = 0x4;

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: core::ffi::c_int,
        flags: core::ffi::c_int,
        fd: core::ffi::c_int,
        offset: i64,
    ) -> *mut core::ffi::c_void;
    fn munmap(addr: *mut core::ffi::c_void, len: usize) -> core::ffi::c_int;
    fn msync(addr: *mut core::ffi::c_void, len: usize, flags: core::ffi::c_int)
        -> core::ffi::c_int;
}

/// A shared file mapping. Read-only by default; a writable mapping
/// (`MAP_SHARED` + `PROT_WRITE`) carries its edits back to the file, with
/// [`Mapping::sync`] as the durability barrier. The mapping is unmapped on
/// drop.
pub struct Mapping {
    ptr: *mut u8,
    len: usize,
    writable: bool,
}

// SAFETY: the mapping is an exclusive handle to a fixed memory range; all
// aliasing is mediated by `&self`/`&mut self` borrows exactly as for a
// `Box<[u8]>`.
// lint:allow(unsafe-seam): Send/Sync for a uniquely-owned mapped range, same contract as Box<[u8]>
unsafe impl Send for Mapping {}
// lint:allow(unsafe-seam): shared reads of a mapped range are as safe as &[u8]
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `len` bytes of `file` from offset 0. `len` must be non-zero
    /// (a zero-length `mmap` is `EINVAL` by spec) and no longer than the
    /// file: mapped pages past EOF fault on access, so the caller
    /// (`format::MappedStore`) always passes the stat'd file length.
    pub fn map(file: &File, len: usize, writable: bool) -> io::Result<Mapping> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty file",
            ));
        }
        let prot = if writable {
            PROT_READ | PROT_WRITE
        } else {
            PROT_READ
        };
        // SAFETY: fd is a live descriptor borrowed for the duration of the
        // call; addr = null lets the kernel pick the placement; the result
        // is checked against MAP_FAILED before use.
        // lint:allow(unsafe-seam): mmap FFI call; null hint + live fd + result checked below
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                prot,
                MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr.cast(),
            len,
            writable,
        })
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe the live mapping established in `map`
        // and not unmapped until drop; the borrow ties the slice to &self.
        // lint:allow(unsafe-seam): reborrow of the owned mapping as a slice
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Mutable access to the mapped bytes (writable mappings only).
    pub fn bytes_mut(&mut self) -> io::Result<&mut [u8]> {
        if !self.writable {
            return Err(io::Error::new(
                io::ErrorKind::PermissionDenied,
                "mapping is read-only",
            ));
        }
        // SAFETY: ptr/len describe the live writable mapping; &mut self
        // guarantees exclusivity for the lifetime of the slice.
        // lint:allow(unsafe-seam): exclusive reborrow of the owned writable mapping
        Ok(unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) })
    }

    /// Synchronously flushes the whole mapping to the file (`MS_SYNC`) —
    /// the write barrier of the dirty-section checkpoint protocol.
    pub fn sync(&self) -> io::Result<()> {
        // SAFETY: ptr is the page-aligned base the kernel returned from
        // mmap and len is the mapped length, exactly what msync expects.
        // lint:allow(unsafe-seam): msync FFI over the whole live mapping
        let rc = unsafe { msync(self.ptr.cast(), self.len, MS_SYNC) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mapping is empty (never true for a successfully built
    /// mapping; kept for slice-like API completeness).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: ptr/len are the exact range mmap returned; after munmap
        // nothing dereferences ptr (self is being dropped).
        // lint:allow(unsafe-seam): munmap of the owned range on drop
        let _ = unsafe { munmap(self.ptr.cast(), self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("stage-store-mmap-{}-{name}", std::process::id()));
        let mut f = File::create(&path).unwrap();
        f.write_all(bytes).unwrap();
        f.sync_all().unwrap();
        path
    }

    #[test]
    fn read_only_mapping_sees_file_bytes() {
        let path = tmp("ro", b"hello mapping");
        let file = File::open(&path).unwrap();
        let m = Mapping::map(&file, 13, false).unwrap();
        assert_eq!(m.bytes(), b"hello mapping");
        assert_eq!(m.len(), 13);
        assert!(!m.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn writable_mapping_carries_edits_to_the_file() {
        let path = tmp("rw", b"aaaaaaaa");
        let file = File::options().read(true).write(true).open(&path).unwrap();
        let mut m = Mapping::map(&file, 8, true).unwrap();
        m.bytes_mut().unwrap()[0..4].copy_from_slice(b"zzzz");
        m.sync().unwrap();
        drop(m);
        assert_eq!(std::fs::read(&path).unwrap(), b"zzzzaaaa");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_only_mapping_refuses_mut_access() {
        let path = tmp("refuse", b"bytes");
        let file = File::open(&path).unwrap();
        let mut m = Mapping::map(&file, 5, false).unwrap();
        assert!(m.bytes_mut().is_err());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_mapping_is_refused() {
        let path = tmp("empty", b"");
        let file = File::open(&path).unwrap();
        assert!(Mapping::map(&file, 0, false).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
