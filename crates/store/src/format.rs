//! The `stage-store v1` on-disk format.
//!
//! ```text
//! offset 0                      64                64 + 32·n
//! ┌──────────────┬───────────────────────┬───────────────┬─────┬───────────────┐
//! │ header (64B) │ section table (32B·n) │ section 0     │ ... │ section n-1   │
//! └──────────────┴───────────────────────┴───────────────┴─────┴───────────────┘
//! ```
//!
//! * **Header** (64 bytes): magic `"STAGSTOR"`, format version (u32),
//!   section count (u32), generation (u64, bumped by every checkpoint —
//!   readers poll it for hot-swap), total file length (u64), crc32 of the
//!   section table, crc32 of the header's own first 36 bytes, and zeroed
//!   reserved space. All integers little-endian.
//! * **Section table**: one 32-byte entry per section — id (u32), payload
//!   crc32 (u32), absolute offset (u64), payload length (u64), reserved
//!   capacity (u64). Sections are contiguous (each offset is the previous
//!   offset + capacity, the first sits right after the table), offsets and
//!   capacities are 8-byte aligned, and `len ≤ cap`.
//! * **Coverage invariant**: every byte of a valid file is either covered
//!   by one of the three crc32s or required to be zero (header reserved
//!   space and the `[len, cap)` slack of each section). A reader validates
//!   all of it up front, so *any* single-bit corruption anywhere in the
//!   file is detected — nothing half-loads.
//!
//! Dirty-section checkpoints ([`StoreUpdater`]): payloads that fit their
//! reserved capacity are rewritten in place through a writable mapping,
//! `msync`'d, and only then is the table updated (new len/crc, bumped
//! generation, recomputed table/header crcs) and `msync`'d again. A crash
//! between the two barriers leaves a payload that mismatches the old table
//! crc — detected on the next open exactly like disk rot, quarantined by
//! the caller, and the shard cold-starts. A section that outgrows its slot
//! forces a full atomic rewrite ([`build_file`] + the caller's
//! temp-and-rename discipline).
//!
//! This file is inside `stage-lint`'s panic-freedom scope: it parses
//! hostile bytes on the serving restore path.

use crate::crc32;
use crate::mmap::Mapping;
use std::fmt;
use std::fs::File;
use std::io;
use std::path::Path;

/// File magic, bytes 0..8 of every store file.
pub const MAGIC: [u8; 8] = *b"STAGSTOR";
/// Current format version.
pub const STORE_VERSION: u32 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Section-table entry length in bytes.
pub const ENTRY_LEN: usize = 32;
/// Hard cap on the section count (a table is a few entries; anything
/// larger is hostile input, rejected before allocation).
pub const MAX_SECTIONS: u32 = 4096;

/// Why a store file (or section payload) could not be read.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header names a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The file is shorter than its header claims.
    Truncated {
        /// Bytes the header (or table) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A crc32 check failed. `section` is `None` for the header/table
    /// checksums.
    ChecksumMismatch {
        /// Section id, or `None` for header/table corruption.
        section: Option<u32>,
        /// Checksum recorded in the file.
        expected: u32,
        /// Checksum computed over the bytes.
        actual: u32,
    },
    /// Structurally invalid content (bad alignment, overlapping sections,
    /// nonzero reserved bytes, a cursor overrun while decoding, ...).
    Malformed {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::BadMagic => write!(f, "not a stage-store file (bad magic)"),
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store version {found} (supported: {STORE_VERSION})")
            }
            StoreError::Truncated { expected, actual } => {
                write!(f, "store truncated: need {expected} bytes, have {actual}")
            }
            StoreError::ChecksumMismatch {
                section,
                expected,
                actual,
            } => match section {
                Some(id) => write!(
                    f,
                    "section {id} checksum mismatch: file says {expected:08x}, bytes are {actual:08x}"
                ),
                None => write!(
                    f,
                    "header/table checksum mismatch: file says {expected:08x}, bytes are {actual:08x}"
                ),
            },
            StoreError::Malformed { detail } => write!(f, "malformed store: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn malformed(detail: impl Into<String>) -> StoreError {
    StoreError::Malformed {
        detail: detail.into(),
    }
}

/// One parsed section-table entry (offsets already bounds-checked).
#[derive(Debug, Clone, Copy)]
struct Entry {
    id: u32,
    crc: u32,
    offset: usize,
    len: usize,
    cap: usize,
}

fn round8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

fn get_u32(bytes: &[u8], at: usize) -> Result<u32, StoreError> {
    let raw = bytes
        .get(at..at + 4)
        .ok_or_else(|| malformed(format!("read of u32 at {at} out of bounds")))?;
    let mut b = [0u8; 4];
    b.copy_from_slice(raw);
    Ok(u32::from_le_bytes(b))
}

fn get_u64(bytes: &[u8], at: usize) -> Result<u64, StoreError> {
    let raw = bytes
        .get(at..at + 8)
        .ok_or_else(|| malformed(format!("read of u64 at {at} out of bounds")))?;
    let mut b = [0u8; 8];
    b.copy_from_slice(raw);
    Ok(u64::from_le_bytes(b))
}

/// Validates a complete store image: header, table, every section crc, and
/// the must-be-zero slack. Returns the parsed entries and the generation.
fn validate(bytes: &[u8]) -> Result<(Vec<Entry>, u64), StoreError> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes.get(..8) != Some(MAGIC.as_slice()) {
        return Err(StoreError::BadMagic);
    }
    let version = get_u32(bytes, 8)?;
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let n_sections = get_u32(bytes, 12)?;
    let generation = get_u64(bytes, 16)?;
    let total_len = get_u64(bytes, 24)?;
    let table_crc = get_u32(bytes, 32)?;
    let header_crc = get_u32(bytes, 36)?;
    let header_covered = bytes.get(..36).unwrap_or_default();
    let actual_header_crc = crc32(header_covered);
    if actual_header_crc != header_crc {
        return Err(StoreError::ChecksumMismatch {
            section: None,
            expected: header_crc,
            actual: actual_header_crc,
        });
    }
    if bytes
        .get(40..HEADER_LEN)
        .is_none_or(|r| r.iter().any(|&b| b != 0))
    {
        return Err(malformed("nonzero reserved header bytes"));
    }
    if total_len != bytes.len() as u64 {
        return Err(StoreError::Truncated {
            expected: total_len,
            actual: bytes.len() as u64,
        });
    }
    if n_sections > MAX_SECTIONS {
        return Err(malformed(format!("section count {n_sections} over cap")));
    }
    let table_len = ENTRY_LEN * n_sections as usize;
    let table_end = HEADER_LEN + table_len;
    let table = bytes
        .get(HEADER_LEN..table_end)
        .ok_or(StoreError::Truncated {
            expected: table_end as u64,
            actual: bytes.len() as u64,
        })?;
    let actual_table_crc = crc32(table);
    if actual_table_crc != table_crc {
        return Err(StoreError::ChecksumMismatch {
            section: None,
            expected: table_crc,
            actual: actual_table_crc,
        });
    }
    let mut entries = Vec::with_capacity(n_sections as usize);
    let mut cursor = table_end;
    for i in 0..n_sections as usize {
        let at = HEADER_LEN + i * ENTRY_LEN;
        let id = get_u32(bytes, at)?;
        let crc = get_u32(bytes, at + 4)?;
        let offset = usize::try_from(get_u64(bytes, at + 8)?)
            .map_err(|_| malformed("section offset overflows usize"))?;
        let len = usize::try_from(get_u64(bytes, at + 16)?)
            .map_err(|_| malformed("section length overflows usize"))?;
        let cap = usize::try_from(get_u64(bytes, at + 24)?)
            .map_err(|_| malformed("section capacity overflows usize"))?;
        if offset != cursor {
            return Err(malformed(format!(
                "section {id}: offset {offset}, expected contiguous {cursor}"
            )));
        }
        if offset % 8 != 0 || cap % 8 != 0 {
            return Err(malformed(format!("section {id}: misaligned offset/cap")));
        }
        if len > cap {
            return Err(malformed(format!("section {id}: len {len} > cap {cap}")));
        }
        let end = offset
            .checked_add(cap)
            .ok_or_else(|| malformed("section range overflows"))?;
        if end > bytes.len() {
            return Err(StoreError::Truncated {
                expected: end as u64,
                actual: bytes.len() as u64,
            });
        }
        if entries.iter().any(|e: &Entry| e.id == id) {
            return Err(malformed(format!("duplicate section id {id}")));
        }
        let payload = bytes
            .get(offset..offset + len)
            .ok_or_else(|| malformed("section payload out of bounds"))?;
        let actual = crc32(payload);
        if actual != crc {
            return Err(StoreError::ChecksumMismatch {
                section: Some(id),
                expected: crc,
                actual,
            });
        }
        let slack = bytes
            .get(offset + len..end)
            .ok_or_else(|| malformed("section slack out of bounds"))?;
        if slack.iter().any(|&b| b != 0) {
            return Err(malformed(format!("section {id}: nonzero slack bytes")));
        }
        cursor = end;
        entries.push(Entry {
            id,
            crc,
            offset,
            len,
            cap,
        });
    }
    if cursor != bytes.len() {
        return Err(malformed(format!(
            "trailing bytes: sections end at {cursor}, file is {}",
            bytes.len()
        )));
    }
    Ok((entries, generation))
}

/// Builds a complete store image for `sections` (in table order) with the
/// given generation stamp. Each section gets 25 % + 64 bytes of reserved
/// slack (8-byte rounded) so moderate growth stays in place across
/// dirty-section checkpoints.
pub fn build_file(sections: &[(u32, Vec<u8>)], generation: u64) -> Vec<u8> {
    let table_end = HEADER_LEN + ENTRY_LEN * sections.len();
    let mut caps = Vec::with_capacity(sections.len());
    let mut total = table_end;
    for (_, payload) in sections {
        let cap = round8(payload.len() + payload.len() / 4 + 64);
        caps.push(cap);
        total += cap;
    }
    let mut out = vec![0u8; total];
    // Payloads first (so their crcs exist for the table).
    let mut offset = table_end;
    for (i, (id, payload)) in sections.iter().enumerate() {
        let cap = caps.get(i).copied().unwrap_or(0);
        if let Some(dst) = out.get_mut(offset..offset + payload.len()) {
            dst.copy_from_slice(payload);
        }
        let at = HEADER_LEN + i * ENTRY_LEN;
        let entry = encode_entry(
            *id,
            crc32(payload),
            offset as u64,
            payload.len() as u64,
            cap as u64,
        );
        if let Some(dst) = out.get_mut(at..at + ENTRY_LEN) {
            dst.copy_from_slice(&entry);
        }
        offset += cap;
    }
    let table_crc = crc32(out.get(HEADER_LEN..table_end).unwrap_or_default());
    let header = encode_header(sections.len() as u32, generation, total as u64, table_crc);
    if let Some(dst) = out.get_mut(..HEADER_LEN) {
        dst.copy_from_slice(&header);
    }
    out
}

fn encode_entry(id: u32, crc: u32, offset: u64, len: u64, cap: u64) -> [u8; ENTRY_LEN] {
    let mut e = [0u8; ENTRY_LEN];
    let fields = id
        .to_le_bytes()
        .into_iter()
        .chain(crc.to_le_bytes())
        .chain(offset.to_le_bytes())
        .chain(len.to_le_bytes())
        .chain(cap.to_le_bytes());
    for (dst, src) in e.iter_mut().zip(fields) {
        *dst = src;
    }
    e
}

fn encode_header(
    n_sections: u32,
    generation: u64,
    total_len: u64,
    table_crc: u32,
) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    // Bytes 0..36 are the crc-covered prefix, in field order; 40..64 stay
    // zero (reserved).
    let covered = MAGIC
        .into_iter()
        .chain(STORE_VERSION.to_le_bytes())
        .chain(n_sections.to_le_bytes())
        .chain(generation.to_le_bytes())
        .chain(total_len.to_le_bytes())
        .chain(table_crc.to_le_bytes());
    for (dst, src) in h.iter_mut().zip(covered) {
        *dst = src;
    }
    let header_crc = crc32(h.get(..36).unwrap_or_default());
    for (dst, src) in h.iter_mut().skip(36).zip(header_crc.to_le_bytes()) {
        *dst = src;
    }
    h
}

/// A validated, borrowed view over a store image (mapped bytes or an
/// in-memory buffer). Every crc and structural invariant is checked at
/// construction — corruption anywhere is an error here, never a bad read
/// later.
pub struct StoreView<'a> {
    bytes: &'a [u8],
    entries: Vec<Entry>,
    generation: u64,
}

impl<'a> StoreView<'a> {
    /// Parses and fully validates a store image.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, StoreError> {
        let (entries, generation) = validate(bytes)?;
        Ok(Self {
            bytes,
            entries,
            generation,
        })
    }

    /// A section's payload bytes, by id.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        let e = self.entries.iter().find(|e| e.id == id)?;
        self.bytes.get(e.offset..e.offset + e.len)
    }

    /// Section ids in table order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// The header's generation stamp.
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// A read-only memory-mapped store file: open = map + validate; reads are
/// in-place slices of the mapping (shared page cache across processes).
pub struct MappedStore {
    map: Mapping,
    entries: Vec<Entry>,
    generation: u64,
}

impl MappedStore {
    /// Maps `path` read-only and validates the image.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| malformed("file too large to map"))?;
        if len < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                actual: len as u64,
            });
        }
        let map = Mapping::map(&file, len, false)?;
        let (entries, generation) = validate(map.bytes())?;
        Ok(Self {
            map,
            entries,
            generation,
        })
    }

    /// A section's payload, in place in the mapping.
    pub fn section(&self, id: u32) -> Option<&[u8]> {
        let e = self.entries.iter().find(|e| e.id == id)?;
        self.map.bytes().get(e.offset..e.offset + e.len)
    }

    /// Section ids in table order.
    pub fn section_ids(&self) -> Vec<u32> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// The header's generation stamp (bumped by every checkpoint; readers
    /// poll it to detect a hot-swapped artefact).
    pub fn generation(&self) -> u64 {
        self.generation
    }
}

/// Reads just the generation stamp of a store file (header validation
/// only — the cheap hot-swap poll; full validation happens on reopen).
pub fn read_generation(path: &Path) -> Result<u64, StoreError> {
    let mut file = File::open(path)?;
    let mut header = [0u8; HEADER_LEN];
    io::Read::read_exact(&mut file, &mut header).map_err(|_| StoreError::Truncated {
        expected: HEADER_LEN as u64,
        actual: 0,
    })?;
    if header.get(..8) != Some(MAGIC.as_slice()) {
        return Err(StoreError::BadMagic);
    }
    let crc_stored = get_u32(&header, 36)?;
    let crc_actual = crc32(header.get(..36).unwrap_or_default());
    if crc_stored != crc_actual {
        return Err(StoreError::ChecksumMismatch {
            section: None,
            expected: crc_stored,
            actual: crc_actual,
        });
    }
    get_u64(&header, 16)
}

/// Result of a [`StoreUpdater::try_update`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// Every section byte-matched the file; nothing was written.
    Clean,
    /// `dirty` sections were rewritten in place and the table updated.
    Updated {
        /// Number of sections rewritten.
        dirty: usize,
    },
    /// The new payloads are incompatible with the existing layout (id set
    /// changed, or a dirty section outgrew its reserved capacity); the
    /// caller must fall back to a full atomic rewrite.
    NeedsRewrite,
}

/// A writable mapping of an existing store file, supporting dirty-section
/// in-place checkpoints.
pub struct StoreUpdater {
    map: Mapping,
    entries: Vec<Entry>,
    generation: u64,
}

impl StoreUpdater {
    /// Maps `path` read-write and validates the image.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::options().read(true).write(true).open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| malformed("file too large to map"))?;
        if len < HEADER_LEN {
            return Err(StoreError::Truncated {
                expected: HEADER_LEN as u64,
                actual: len as u64,
            });
        }
        let map = Mapping::map(&file, len, true)?;
        let (entries, generation) = validate(map.bytes())?;
        Ok(Self {
            map,
            entries,
            generation,
        })
    }

    /// The mapped file's current generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Attempts a section-granular checkpoint: `sections` must list the
    /// same ids in the same order as the file's table. Unchanged payloads
    /// are skipped; changed ones that fit their reserved capacity are
    /// rewritten in place (payloads `msync`'d *before* the table so a torn
    /// update is always detectable); any misfit demands a full rewrite.
    pub fn try_update(&mut self, sections: &[(u32, Vec<u8>)]) -> Result<UpdateOutcome, StoreError> {
        if sections.len() != self.entries.len()
            || sections
                .iter()
                .zip(&self.entries)
                .any(|((id, _), e)| *id != e.id)
        {
            return Ok(UpdateOutcome::NeedsRewrite);
        }
        let mut dirty = Vec::new();
        for (i, (_, payload)) in sections.iter().enumerate() {
            let Some(e) = self.entries.get(i) else {
                return Ok(UpdateOutcome::NeedsRewrite);
            };
            let current = self.map.bytes().get(e.offset..e.offset + e.len);
            if current != Some(payload.as_slice()) {
                if payload.len() > e.cap {
                    return Ok(UpdateOutcome::NeedsRewrite);
                }
                dirty.push(i);
            }
        }
        if dirty.is_empty() {
            return Ok(UpdateOutcome::Clean);
        }
        // Phase 1: payloads (and zeroed slack) into the mapping, then a
        // sync barrier. The table still describes the old bytes, so a tear
        // here reads as a checksum mismatch, never a half-load.
        for &i in &dirty {
            let (offset, cap, end) = match self.entries.get(i) {
                Some(e) => (e.offset, e.cap, e.offset + e.cap),
                None => return Err(malformed("dirty index out of table")),
            };
            let payload = match sections.get(i) {
                Some((_, p)) => p,
                None => return Err(malformed("dirty index out of sections")),
            };
            let _ = cap;
            let bytes = self.map.bytes_mut()?;
            let slot = bytes
                .get_mut(offset..end)
                .ok_or_else(|| malformed("section slot out of mapping"))?;
            let (data, slack) = slot.split_at_mut(payload.len().min(slot.len()));
            data.copy_from_slice(payload.get(..data.len()).unwrap_or_default());
            slack.fill(0);
        }
        self.map.sync()?;
        // Phase 2: table entries (len + crc), generation, table/header
        // crcs, and the second barrier.
        for &i in &dirty {
            let (id, offset, cap, len, crc) = match (self.entries.get(i), sections.get(i)) {
                (Some(e), Some((id, p))) => (*id, e.offset, e.cap, p.len(), crc32(p)),
                _ => return Err(malformed("dirty index out of range")),
            };
            let entry = encode_entry(id, crc, offset as u64, len as u64, cap as u64);
            let at = HEADER_LEN + i * ENTRY_LEN;
            let bytes = self.map.bytes_mut()?;
            let dst = bytes
                .get_mut(at..at + ENTRY_LEN)
                .ok_or_else(|| malformed("table entry out of mapping"))?;
            dst.copy_from_slice(&entry);
            if let Some(e) = self.entries.get_mut(i) {
                e.len = len;
                e.crc = crc;
            }
        }
        self.generation = self.generation.wrapping_add(1);
        let table_end = HEADER_LEN + ENTRY_LEN * self.entries.len();
        let total_len = self.map.len() as u64;
        let (n, generation) = (self.entries.len() as u32, self.generation);
        let bytes = self.map.bytes_mut()?;
        let table_crc = crc32(bytes.get(HEADER_LEN..table_end).unwrap_or_default());
        let header = encode_header(n, generation, total_len, table_crc);
        let dst = bytes
            .get_mut(..HEADER_LEN)
            .ok_or_else(|| malformed("header out of mapping"))?;
        dst.copy_from_slice(&header);
        self.map.sync()?;
        Ok(UpdateOutcome::Updated { dirty: dirty.len() })
    }
}

/// Incremental encoder for one section's payload. Primitives are
/// little-endian; floats are stored as their `to_bits` image so NaN
/// payloads and `-0.0` survive bit-exactly; slices are count-prefixed and
/// padded to their element alignment (the section base is 8-aligned in the
/// file, so in-buffer alignment equals absolute alignment).
#[derive(Default)]
pub struct SectionWriter {
    buf: Vec<u8>,
}

impl SectionWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pads with zero bytes to the next multiple of `align`.
    pub fn align(&mut self, align: usize) {
        if align > 1 {
            while !self.buf.len().is_multiple_of(align) {
                self.buf.push(0);
            }
        }
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its little-endian bit image.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends a count-prefixed raw byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a count-prefixed u32 array (data 4-aligned).
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.align(4);
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a count-prefixed u64 array (data 8-aligned).
    pub fn put_u64_slice(&mut self, v: &[u64]) {
        self.align(8);
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_le_bytes());
        }
    }

    /// Appends a count-prefixed f64 array (data 8-aligned).
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.align(8);
        self.put_u64(v.len() as u64);
        for &x in v {
            self.buf.extend_from_slice(&x.to_bits().to_le_bytes());
        }
    }

    /// The encoded payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current payload length (for alignment bookkeeping in callers).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Cursor over one section's payload, mirroring [`SectionWriter`] get for
/// put. Every read is bounds-checked and every count is validated against
/// the remaining bytes *before* any allocation, so hostile payloads
/// produce typed errors, never panics or OOM.
pub struct SectionReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionReader<'a> {
    /// A cursor at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| malformed("cursor overflow"))?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| malformed(format!("cursor overrun: {n} bytes at {}", self.pos)))?;
        self.pos = end;
        Ok(slice)
    }

    /// Skips zero padding to the next multiple of `align`.
    pub fn align(&mut self, align: usize) -> Result<(), StoreError> {
        if align > 1 {
            while !self.pos.is_multiple_of(align) {
                let pad = self.take(1)?;
                if pad != [0u8] {
                    return Err(malformed("nonzero alignment padding"));
                }
            }
        }
        Ok(())
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, StoreError> {
        let raw = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(raw);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, StoreError> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads an f64 from its bit image.
    pub fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a strict bool (only 0 or 1 accepted).
    pub fn bool(&mut self) -> Result<bool, StoreError> {
        match self.take(1)? {
            [0] => Ok(false),
            [1] => Ok(true),
            _ => Err(malformed("bool byte not 0/1")),
        }
    }

    /// Reads a count-prefixed raw byte string (borrowed).
    pub fn bytes(&mut self) -> Result<&'a [u8], StoreError> {
        let n = self.checked_count(1)?;
        self.take(n)
    }

    /// Reads a count-prefixed u32 array into an owned Vec.
    pub fn u32_vec(&mut self) -> Result<Vec<u32>, StoreError> {
        self.align(4)?;
        let n = self.checked_count(4)?;
        let raw = self.take(n * 4)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| {
                let mut b = [0u8; 4];
                b.copy_from_slice(c);
                u32::from_le_bytes(b)
            })
            .collect())
    }

    /// Reads a count-prefixed u64 array into an owned Vec.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, StoreError> {
        self.align(8)?;
        let n = self.checked_count(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                u64::from_le_bytes(b)
            })
            .collect())
    }

    /// Reads a count-prefixed f64 array into an owned Vec.
    pub fn f64_vec(&mut self) -> Result<Vec<f64>, StoreError> {
        self.align(8)?;
        let n = self.checked_count(8)?;
        let raw = self.take(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| {
                let mut b = [0u8; 8];
                b.copy_from_slice(c);
                f64::from_bits(u64::from_le_bytes(b))
            })
            .collect())
    }

    /// Reads a count-prefixed u32 array **zero-copy**: the returned slice
    /// borrows the underlying payload. Requires the data to be 4-aligned
    /// in memory — true for mapped store files (sections are 8-aligned and
    /// the writer pads), not necessarily for heap copies; misalignment is
    /// a typed error, not UB.
    pub fn u32_slice(&mut self) -> Result<&'a [u32], StoreError> {
        self.align(4)?;
        let n = self.checked_count(4)?;
        let raw = self.take(n * 4)?;
        if raw.as_ptr().align_offset(4) != 0 {
            return Err(malformed("u32 slice not 4-aligned in this buffer"));
        }
        // SAFETY: the pointer is 4-aligned (checked above), the byte length
        // is exactly n*4, any bit pattern is a valid u32, and the borrow
        // keeps the payload alive for 'a.
        // lint:allow(unsafe-seam): zero-copy &[u8]→&[u32] cast; alignment and length checked above
        Ok(unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<u32>(), n) })
    }

    /// Reads a count-prefixed f64 array **zero-copy** (see
    /// [`SectionReader::u32_slice`] for the alignment contract).
    pub fn f64_slice(&mut self) -> Result<&'a [f64], StoreError> {
        self.align(8)?;
        let n = self.checked_count(8)?;
        let raw = self.take(n * 8)?;
        if raw.as_ptr().align_offset(8) != 0 {
            return Err(malformed("f64 slice not 8-aligned in this buffer"));
        }
        // SAFETY: the pointer is 8-aligned (checked above), the byte length
        // is exactly n*8, any bit pattern is a valid f64, and the borrow
        // keeps the payload alive for 'a.
        // lint:allow(unsafe-seam): zero-copy &[u8]→&[f64] cast; alignment and length checked above
        Ok(unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<f64>(), n) })
    }

    /// Reads a u64 count and validates `count * elem` fits the remaining
    /// bytes (rejecting hostile counts before allocation).
    fn checked_count(&mut self, elem: usize) -> Result<usize, StoreError> {
        let n = usize::try_from(self.u64()?).map_err(|_| malformed("count overflows usize"))?;
        let need = n
            .checked_mul(elem)
            .ok_or_else(|| malformed("count overflows"))?;
        if need > self.bytes.len().saturating_sub(self.pos) {
            return Err(malformed(format!(
                "count {n} needs {need} bytes, {} remain",
                self.bytes.len() - self.pos
            )));
        }
        Ok(n)
    }

    /// Asserts the cursor consumed the whole payload — decode and encode
    /// must agree exactly; trailing bytes mean a half-understood section.
    pub fn expect_end(&self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(malformed(format!(
                "section has {} undecoded trailing bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len().saturating_sub(self.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_sections() -> Vec<(u32, Vec<u8>)> {
        let mut a = SectionWriter::new();
        a.put_u64(7);
        a.put_f64(1.5);
        a.put_f64_slice(&[1.0, -0.0, f64::NAN]);
        let mut b = SectionWriter::new();
        b.put_u32_slice(&[1, 2, 3, u32::MAX]);
        b.put_bool(true);
        vec![(1, a.finish()), (2, b.finish())]
    }

    #[test]
    fn build_parse_round_trip() {
        let sections = sample_sections();
        let img = build_file(&sections, 42);
        let view = StoreView::parse(&img).unwrap();
        assert_eq!(view.generation(), 42);
        assert_eq!(view.section_ids(), vec![1, 2]);
        let mut r = SectionReader::new(view.section(1).unwrap());
        assert_eq!(r.u64().unwrap(), 7);
        assert_eq!(r.f64().unwrap(), 1.5);
        let fs = r.f64_vec().unwrap();
        assert_eq!(fs[0].to_bits(), 1.0f64.to_bits());
        assert_eq!(fs[1].to_bits(), (-0.0f64).to_bits());
        assert!(fs[2].is_nan());
        r.expect_end().unwrap();
        let mut r = SectionReader::new(view.section(2).unwrap());
        assert_eq!(r.u32_vec().unwrap(), vec![1, 2, 3, u32::MAX]);
        assert!(r.bool().unwrap());
        r.expect_end().unwrap();
        assert!(view.section(9).is_none());
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let img = build_file(&sample_sections(), 1);
        // Exhaustive over a small file: flip every bit, parse must fail.
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut bad = img.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    StoreView::parse(&bad).is_err(),
                    "flip at byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_detected() {
        let img = build_file(&sample_sections(), 1);
        for cut in 0..img.len() {
            assert!(
                StoreView::parse(&img[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed_errors() {
        let img = build_file(&sample_sections(), 1);
        let mut bad = img.clone();
        bad[0] = b'X';
        assert!(matches!(StoreView::parse(&bad), Err(StoreError::BadMagic)));
        let mut bad = img.clone();
        bad[8..12].copy_from_slice(&99u32.to_le_bytes());
        // The header crc notices first unless we recompute it; patch it to
        // isolate the version check.
        let crc = crate::crc32(&bad[..36]);
        bad[36..40].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            StoreView::parse(&bad),
            Err(StoreError::UnsupportedVersion { found: 99 })
        ));
    }

    #[test]
    fn mapped_store_reads_sections_in_place() {
        let sections = sample_sections();
        let img = build_file(&sections, 9);
        let path =
            std::env::temp_dir().join(format!("stage-store-fmt-{}.store", std::process::id()));
        std::fs::write(&path, &img).unwrap();
        let store = MappedStore::open(&path).unwrap();
        assert_eq!(store.generation(), 9);
        assert_eq!(store.section(1), StoreView::parse(&img).unwrap().section(1));
        assert_eq!(read_generation(&path).unwrap(), 9);
        // Zero-copy typed reads work on the mapping (8-aligned sections).
        let mut r = SectionReader::new(store.section(1).unwrap());
        r.u64().unwrap();
        r.f64().unwrap();
        let zs = r.f64_slice().unwrap();
        assert_eq!(zs.len(), 3);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dirty_section_update_in_place() {
        let mut sections = sample_sections();
        let img = build_file(&sections, 1);
        let path =
            std::env::temp_dir().join(format!("stage-store-upd-{}.store", std::process::id()));
        std::fs::write(&path, &img).unwrap();

        // Clean update: nothing written, generation unchanged.
        let mut upd = StoreUpdater::open(&path).unwrap();
        assert_eq!(upd.try_update(&sections).unwrap(), UpdateOutcome::Clean);
        drop(upd);
        assert_eq!(read_generation(&path).unwrap(), 1);

        // Dirty section 2, same size: in-place, generation bumps.
        let mut w = SectionWriter::new();
        w.put_u32_slice(&[9, 9, 9, 9]);
        w.put_bool(false);
        sections[1].1 = w.finish();
        let mut upd = StoreUpdater::open(&path).unwrap();
        assert_eq!(
            upd.try_update(&sections).unwrap(),
            UpdateOutcome::Updated { dirty: 1 }
        );
        drop(upd);
        let store = MappedStore::open(&path).unwrap();
        assert_eq!(store.generation(), 2);
        let mut r = SectionReader::new(store.section(2).unwrap());
        assert_eq!(r.u32_vec().unwrap(), vec![9, 9, 9, 9]);
        drop(store);

        // A section that outgrows its slack demands a rewrite.
        sections[1].1 = vec![0xAB; 4096];
        let mut upd = StoreUpdater::open(&path).unwrap();
        assert_eq!(
            upd.try_update(&sections).unwrap(),
            UpdateOutcome::NeedsRewrite
        );
        drop(upd);
        // A different id set does too.
        let renamed = vec![(1, vec![1u8]), (7, vec![2u8])];
        let mut upd = StoreUpdater::open(&path).unwrap();
        assert_eq!(
            upd.try_update(&renamed).unwrap(),
            UpdateOutcome::NeedsRewrite
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn shrinking_section_zeroes_slack_and_stays_valid() {
        let mut sections = sample_sections();
        let img = build_file(&sections, 1);
        let path =
            std::env::temp_dir().join(format!("stage-store-shrink-{}.store", std::process::id()));
        std::fs::write(&path, &img).unwrap();
        let mut w = SectionWriter::new();
        w.put_u32_slice(&[5]);
        w.put_bool(true);
        sections[1].1 = w.finish();
        let mut upd = StoreUpdater::open(&path).unwrap();
        assert_eq!(
            upd.try_update(&sections).unwrap(),
            UpdateOutcome::Updated { dirty: 1 }
        );
        drop(upd);
        // Full validation passes: the [len, cap) slack was re-zeroed.
        let store = MappedStore::open(&path).unwrap();
        let mut r = SectionReader::new(store.section(2).unwrap());
        assert_eq!(r.u32_vec().unwrap(), vec![5]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A section claiming u64::MAX elements must error out, not OOM.
        let mut w = SectionWriter::new();
        w.put_u64(u64::MAX);
        let payload = w.finish();
        let img = build_file(&[(1, payload)], 0);
        let view = StoreView::parse(&img).unwrap();
        let mut r = SectionReader::new(view.section(1).unwrap());
        assert!(r.f64_vec().is_err());
    }

    #[test]
    fn reader_rejects_trailing_bytes_and_bad_bools() {
        let mut w = SectionWriter::new();
        w.put_u32(1);
        w.put_u32(2);
        let payload = w.finish();
        let mut r = SectionReader::new(&payload);
        assert_eq!(r.u32().unwrap(), 1);
        assert!(r.expect_end().is_err());
        assert_eq!(r.remaining(), 4);
        let mut r = SectionReader::new(&[7u8]);
        assert!(r.bool().is_err());
    }
}
