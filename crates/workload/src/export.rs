//! Query-log export/import as JSON Lines.
//!
//! The paper's pipeline is log-driven: plans and exec-times are swept from
//! production tables, shipped, and replayed offline. This module gives the
//! synthetic fleet the same workflow — an [`crate::InstanceWorkload`]'s events
//! serialize to one JSON object per line, and a log can be re-ingested for
//! replay elsewhere (the `experiments` harness and external tooling can
//! exchange workloads without regenerating them).

use crate::generator::QueryEvent;
use std::io::{self, BufRead, Write};

/// Writes events as JSON Lines (one event per line).
pub fn write_jsonl<W: Write>(events: &[QueryEvent], mut out: W) -> io::Result<()> {
    for event in events {
        let line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        out.write_all(line.as_bytes())?;
        out.write_all(b"\n")?;
    }
    Ok(())
}

/// Reads events from JSON Lines, preserving order. Empty lines are skipped;
/// any malformed line fails the whole read (logs are artefacts, not user
/// input — corruption should be loud).
pub fn read_jsonl<R: BufRead>(input: R) -> io::Result<Vec<QueryEvent>> {
    let mut events = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let event: QueryEvent = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {e}", i + 1))
        })?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{FleetConfig, InstanceWorkload};

    #[test]
    fn round_trip_preserves_events() {
        let w = InstanceWorkload::generate(&FleetConfig::tiny(), 0);
        let sample = &w.events[..w.events.len().min(50)];
        let mut buf = Vec::new();
        write_jsonl(sample, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), sample.len());
        for (a, b) in sample.iter().zip(&back) {
            assert_eq!(a.arrival_secs, b.arrival_secs);
            assert_eq!(a.true_exec_secs, b.true_exec_secs);
            assert_eq!(a.template_id, b.template_id);
            assert_eq!(a.plan, b.plan);
            assert_eq!(a.true_rows, b.true_rows);
        }
    }

    #[test]
    fn empty_lines_skipped_garbage_rejected() {
        let w = InstanceWorkload::generate(&FleetConfig::tiny(), 1);
        let mut buf = Vec::new();
        write_jsonl(&w.events[..2], &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.insert_str(0, "\n\n");
        let back = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), 2);

        let corrupted = format!("{text}not json\n");
        let err = read_jsonl(corrupted.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line"));
    }

    #[test]
    fn empty_log() {
        let mut buf = Vec::new();
        write_jsonl(&[], &mut buf).unwrap();
        assert!(buf.is_empty());
        assert!(read_jsonl(buf.as_slice()).unwrap().is_empty());
    }
}
