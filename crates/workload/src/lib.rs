//! # stage-workload
//!
//! Synthetic Redshift-fleet substrate. The paper evaluates Stage on query
//! logs from the 300 top-billed production instances (~30 M queries); those
//! logs are proprietary, so this crate generates a fleet whose *distributional
//! properties* match everything the paper's design and evaluation key off:
//!
//! * **Repetition** (Fig. 1a): most queries are dashboard/report refreshes —
//!   exact repeats of a recent query. Instances vary widely in their
//!   daily-unique fraction; the fleet-wide average repeat rate is ≈ 60%.
//! * **Latency skew** (Fig. 1b): latencies span milliseconds to hours,
//!   heavily concentrated at the short end.
//! * **Instance heterogeneity**: each instance has *hidden* per-operator
//!   speed factors (hardware generation, data layout, tuning) that are
//!   visible to a per-instance model through its labels but invisible to a
//!   cross-instance model — reproducing the paper's central negative result
//!   that the global model loses to the local model on in-distribution
//!   queries (Table 5).
//! * **Label noise**: the same query repeated at different times sees
//!   different system load and cache states, so observed exec-times vary —
//!   long queries more so (§5.3).
//! * **Drift**: tables grow over time, and optimizer statistics refresh only
//!   daily, so plan estimates lag reality (§4.2's freshness argument for the
//!   cache's α-blend).
//!
//! Modules:
//!
//! * [`instance`] — public instance specs (node type/count/memory) and the
//!   hidden per-instance truth factors;
//! * [`template`] — query templates (dashboard / report / ad-hoc / ETL) that
//!   expand into [`stage_plan::PhysicalPlan`]s given current table stats;
//! * [`truth`] — the cost-truth executor mapping (plan truth, instance,
//!   load) → true exec-time;
//! * [`generator`] — fleet assembly and event-log generation;
//! * [`stats`] — Fig. 1a/1b style fleet statistics.

pub mod export;
pub mod generator;
pub mod instance;
pub mod stats;
pub mod template;
pub mod truth;

pub use export::{read_jsonl, write_jsonl};
pub use generator::{Fleet, FleetConfig, InstanceWorkload, QueryEvent};
pub use instance::{InstanceSpec, InstanceTruth, NodeType};
pub use stats::{daily_unique_fraction, fleet_latency_histogram};
pub use template::{Template, TemplateKind};
pub use truth::{CostTruthModel, LoadProfile};
