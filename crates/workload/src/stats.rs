//! Fleet statistics reproducing Fig. 1 of the paper.
//!
//! * [`daily_unique_fraction`] — the fraction of an instance's queries that
//!   had *no* identical query (same flattened feature vector) within the
//!   preceding 24 hours (Fig. 1a plots its distribution over clusters);
//! * [`fleet_latency_histogram`] — the fleet-wide latency distribution
//!   (Fig. 1b).

use crate::generator::{Fleet, QueryEvent};
use stage_metrics::LogHistogram;
use stage_plan::plan_feature_vector;
use std::collections::HashMap;

/// Fraction of events that are "daily unique": no event with an identical
/// plan feature vector in the preceding 24 simulated hours. Returns `None`
/// for an empty log.
pub fn daily_unique_fraction(events: &[QueryEvent]) -> Option<f64> {
    if events.is_empty() {
        return None;
    }
    let mut last_seen: HashMap<u64, f64> = HashMap::new();
    let mut unique = 0usize;
    for e in events {
        let h = plan_feature_vector(&e.plan).stable_hash();
        let is_repeat = last_seen
            .get(&h)
            .map(|&t| e.arrival_secs - t <= 86_400.0)
            .unwrap_or(false);
        if !is_repeat {
            unique += 1;
        }
        last_seen.insert(h, e.arrival_secs);
    }
    Some(unique as f64 / events.len() as f64)
}

/// Convenience: `1 − daily_unique_fraction`.
pub fn repeat_fraction(events: &[QueryEvent]) -> Option<f64> {
    daily_unique_fraction(events).map(|u| 1.0 - u)
}

/// Fleet-wide exec-time histogram (log-spaced 1 ms – 10 h, Fig. 1b).
pub fn fleet_latency_histogram(fleet: &Fleet) -> LogHistogram {
    let mut h = LogHistogram::for_latencies();
    for inst in &fleet.instances {
        for e in &inst.events {
            h.record(e.true_exec_secs);
        }
    }
    h
}

/// Per-instance daily-unique fractions (the Fig. 1a distribution).
pub fn unique_fraction_distribution(fleet: &Fleet) -> Vec<f64> {
    fleet
        .instances
        .iter()
        .filter_map(|i| daily_unique_fraction(&i.events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Fleet, FleetConfig, InstanceWorkload};

    #[test]
    fn empty_log_is_none() {
        assert_eq!(daily_unique_fraction(&[]), None);
    }

    #[test]
    fn repeats_detected() {
        let w = InstanceWorkload::generate(&FleetConfig::tiny(), 0);
        let u = daily_unique_fraction(&w.events).unwrap();
        let r = repeat_fraction(&w.events).unwrap();
        assert!((u + r - 1.0).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&u));
        // A single tiny instance has a few dozen events — too few for a
        // sharp distributional claim — so pool the whole tiny fleet:
        // dashboards dominate it and repeats must exist in bulk.
        let fleet = Fleet::generate(FleetConfig::tiny());
        let (mut repeats, mut total) = (0.0, 0usize);
        for inst in &fleet.instances {
            if let Some(r) = repeat_fraction(&inst.events) {
                repeats += r * inst.events.len() as f64;
                total += inst.events.len();
            }
        }
        assert!(total > 0);
        let pooled = repeats / total as f64;
        assert!(pooled > 0.2, "pooled repeat fraction too low: {pooled}");
    }

    #[test]
    fn fleet_average_repeat_rate_matches_paper_ballpark() {
        // Paper: >60% of queries repeat within 24h on average. Check the
        // default fleet lands in a broad band around that (±20 points).
        let cfg = FleetConfig {
            n_instances: 8,
            duration_days: 2.0,
            ..FleetConfig::default()
        };
        let fleet = Fleet::generate(cfg);
        let total: usize = fleet.total_events();
        let repeats: f64 = fleet
            .instances
            .iter()
            .filter_map(|i| repeat_fraction(&i.events).map(|r| r * i.events.len() as f64))
            .sum();
        let rate = repeats / total as f64;
        assert!(
            (0.4..=0.85).contains(&rate),
            "fleet repeat rate {rate} outside the plausible band"
        );
    }

    #[test]
    fn unique_distribution_spreads_across_instances() {
        let cfg = FleetConfig {
            n_instances: 10,
            duration_days: 1.0,
            ..FleetConfig::default()
        };
        let fleet = Fleet::generate(cfg);
        let dist = unique_fraction_distribution(&fleet);
        assert_eq!(dist.len(), 10);
        let min = dist.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = dist.iter().cloned().fold(0.0f64, f64::max);
        assert!(max - min > 0.05, "instances should differ: {min}..{max}");
    }

    #[test]
    fn latency_histogram_covers_all_events() {
        let fleet = Fleet::generate(FleetConfig::tiny());
        let h = fleet_latency_histogram(&fleet);
        assert_eq!(h.total() as usize, fleet.total_events());
    }
}
