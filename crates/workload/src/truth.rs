//! The cost-truth execution model.
//!
//! Stands in for Redshift's actual executor: maps a plan (with *true*
//! per-node cardinalities), an instance (public spec + hidden truth
//! factors), and the system load at execution time to a ground-truth
//! exec-time in seconds. The model is analytic — per-operator work
//! functions scaled by hidden instance factors, cluster size, memory
//! pressure (spill), a time-varying load factor, and multiplicative
//! log-normal noise whose σ grows with query length (the paper observes
//! long queries are inherently noisier, §5.3).

use crate::instance::{InstanceSpec, InstanceTruth};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stage_plan::{OperatorKind, PhysicalPlan, PlanNode};

/// Sinusoidal-plus-bursts system load. `factor(t)` multiplies exec-times;
/// `concurrency(t)` feeds the system feature vector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoadProfile {
    /// Diurnal amplitude in `[0, 1)`.
    pub amplitude: f64,
    /// Period in seconds (one simulated day).
    pub period_secs: f64,
    /// Phase offset in seconds.
    pub phase_secs: f64,
    /// Probability that any given query lands in a load burst.
    pub burst_prob: f64,
    /// Multiplier applied during bursts.
    pub burst_scale: f64,
    /// Baseline number of concurrent queries.
    pub base_concurrency: f64,
}

impl LoadProfile {
    /// Samples a per-instance load profile.
    pub fn sample(rng: &mut StdRng) -> Self {
        Self {
            amplitude: rng.gen_range(0.2..0.7),
            period_secs: 86_400.0,
            phase_secs: rng.gen_range(0.0..86_400.0),
            burst_prob: rng.gen_range(0.01..0.04),
            burst_scale: rng.gen_range(1.5..4.0),
            base_concurrency: rng.gen_range(1.0..8.0),
        }
    }

    /// Deterministic diurnal component at time `t` (≥ `1 - amplitude`).
    pub fn diurnal(&self, t_secs: f64) -> f64 {
        1.0 + self.amplitude
            * (2.0 * std::f64::consts::PI * (t_secs + self.phase_secs) / self.period_secs).sin()
    }

    /// Stochastic load factor at time `t` (diurnal × possible burst).
    pub fn factor(&self, t_secs: f64, rng: &mut StdRng) -> f64 {
        let mut f = self.diurnal(t_secs);
        if rng.gen_range(0.0..1.0) < self.burst_prob {
            f *= self.burst_scale;
        }
        f
    }

    /// Concurrency level accompanying a load factor.
    pub fn concurrency(&self, load_factor: f64, rng: &mut StdRng) -> u32 {
        let mean = self.base_concurrency * load_factor;
        let jitter: f64 = rng.gen_range(0.5..1.5);
        (mean * jitter).round().max(1.0) as u32
    }
}

/// Analytic per-operator cost model with instance factors and noise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostTruthModel {
    /// Noise σ floor for near-instant queries.
    pub sigma_short: f64,
    /// Additional σ approached by multi-minute queries.
    pub sigma_long_extra: f64,
    /// Probability of a pathological outlier execution (lock waits, etc.).
    pub outlier_prob: f64,
    /// Global multiplier on per-operator work (calibrates the fleet's
    /// latency distribution to the paper's top-billed-instance shape).
    pub work_scale: f64,
    /// Parallel-efficiency exponent: work divides by
    /// `cluster_speed^speed_exponent` (< 1 models coordination overhead).
    pub speed_exponent: f64,
}

impl Default for CostTruthModel {
    fn default() -> Self {
        Self {
            sigma_short: 0.22,
            sigma_long_extra: 0.38,
            outlier_prob: 0.007,
            work_scale: 6.0,
            speed_exponent: 0.7,
        }
    }
}

/// Per-row work in seconds on one ra3.4xlarge node, by operator.
fn base_coeff(op: OperatorKind) -> f64 {
    use OperatorKind as K;
    match op {
        K::SeqScan | K::SubqueryScan | K::FunctionScan | K::CteScan => 2.0e-7,
        K::S3Scan => 2.0e-7, // format factor applied separately
        K::HashJoin => 4.0e-7,
        K::MergeJoin => 3.0e-7,
        K::NestedLoopJoin => 1.2e-6,
        K::SemiJoin | K::AntiJoin => 4.5e-7,
        K::Hash => 5.0e-7,
        K::Sort | K::TopSort => 4.0e-7, // × log2(rows) below
        K::HashAggregate => 4.0e-7,
        K::GroupAggregate => 3.0e-7,
        K::Aggregate => 2.0e-7,
        K::DsDistAll | K::DsBcast => 8.0e-7,
        K::DsDistEven | K::DsDistKey => 3.0e-7,
        K::DsDistNone => 2.0e-8,
        K::NetworkReturn => 1.0e-7,
        K::Materialize => 2.5e-7,
        K::WindowAgg => 5.0e-7,
        K::Append | K::Intersect | K::Except | K::Unique => 3.0e-7,
        K::Limit | K::Project | K::Result | K::Subplan => 2.0e-8,
        K::Insert => 1.5e-6,
        K::Delete => 1.0e-6,
        K::Update => 2.0e-6,
    }
}

impl CostTruthModel {
    /// Work of one node in seconds on a single reference node, given *true*
    /// cardinalities. `true_rows` is the node's true output, `child_rows`
    /// the sum of its children's true outputs, and `scanned_rows` the rows a
    /// base-table scan actually reads (0 for non-scans) — column stores pay
    /// for rows read, not rows surviving the filter.
    pub fn node_work(
        &self,
        node: &PlanNode,
        true_rows: f64,
        child_rows: f64,
        scanned_rows: f64,
        spill: bool,
    ) -> f64 {
        let processed = if node.op.is_base_table_scan() {
            scanned_rows.max(true_rows)
        } else {
            true_rows + child_rows
        };
        let mut work = base_coeff(node.op) * processed;
        // Width: wider tuples cost more to move and hash.
        work *= 1.0 + node.width.max(0.0) / 256.0;
        // Sorts are n log n.
        if matches!(node.op, OperatorKind::Sort | OperatorKind::TopSort) {
            work *= (processed + 2.0).log2() / 10.0;
        }
        // External formats read slower.
        if let Some(fmt) = node.s3_format {
            if node.op.is_base_table_scan() {
                work *= fmt.scan_cost_factor();
            }
        }
        // Memory-pressure spill penalty for pipeline-breaking operators.
        if spill
            && matches!(
                node.op,
                OperatorKind::Hash
                    | OperatorKind::Sort
                    | OperatorKind::TopSort
                    | OperatorKind::HashAggregate
                    | OperatorKind::WindowAgg
                    | OperatorKind::Materialize
            )
        {
            work *= 2.5;
        }
        work
    }

    /// Deterministic (noise-free) exec-time of a plan with true per-node
    /// cardinalities (`true_rows` in pre-order, aligned with
    /// [`PhysicalPlan::iter_preorder`]).
    ///
    /// # Panics
    /// Panics if `true_rows.len() != plan.node_count()`.
    pub fn base_exec_time(
        &self,
        plan: &PhysicalPlan,
        true_rows: &[f64],
        scanned_rows: &[f64],
        spec: &InstanceSpec,
        truth: &InstanceTruth,
    ) -> f64 {
        assert_eq!(
            true_rows.len(),
            plan.node_count(),
            "true_rows must align with pre-order nodes"
        );
        assert_eq!(
            scanned_rows.len(),
            plan.node_count(),
            "scanned_rows must align with pre-order nodes"
        );
        // Index nodes in pre-order and record children sums.
        let nodes: Vec<&PlanNode> = plan.iter_preorder().collect();
        // Map each node to its position to find children sums: children of
        // node i are the next subtree_size segments; recompute via traversal.
        let mut child_sum = vec![0.0f64; nodes.len()];
        {
            // Reconstruct child relationships positionally.
            fn walk(
                node: &PlanNode,
                pos: &mut usize,
                true_rows: &[f64],
                child_sum: &mut [f64],
            ) -> usize {
                let my_pos = *pos;
                *pos += 1;
                let mut sum = 0.0;
                for child in &node.children {
                    let child_pos = *pos;
                    walk(child, pos, true_rows, child_sum);
                    sum += true_rows[child_pos];
                }
                child_sum[my_pos] = sum;
                my_pos
            }
            let mut pos = 0usize;
            walk(&plan.root, &mut pos, true_rows, &mut child_sum);
        }

        // Spill check: largest intermediate vs per-query memory budget
        // (assume a query gets memory_gb / 10 of the cluster).
        let budget_bytes = spec.memory_gb * 1e9 / 10.0;
        let max_intermediate = nodes
            .iter()
            .zip(true_rows)
            .map(|(n, &r)| r * n.width.max(8.0))
            .fold(0.0f64, f64::max);
        let spill = max_intermediate > budget_bytes;

        let mut total = 0.0;
        for (i, node) in nodes.iter().enumerate() {
            let w = self.node_work(node, true_rows[i], child_sum[i], scanned_rows[i], spill);
            total += w * truth.category_factor(node.op.category());
        }
        truth.fixed_overhead_secs
            + total * self.work_scale * truth.global_factor
                / spec.cluster_speed().powf(self.speed_exponent)
    }

    /// Full stochastic exec-time: base × load factor × log-normal noise,
    /// with rare outliers. σ grows with the base time.
    #[allow(clippy::too_many_arguments)]
    pub fn exec_time(
        &self,
        plan: &PhysicalPlan,
        true_rows: &[f64],
        scanned_rows: &[f64],
        spec: &InstanceSpec,
        truth: &InstanceTruth,
        load_factor: f64,
        rng: &mut StdRng,
    ) -> f64 {
        let base = self.base_exec_time(plan, true_rows, scanned_rows, spec, truth);
        let sigma = self.sigma_short + self.sigma_long_extra * (1.0 - (-base / 60.0).exp());
        // Short queries are far less exposed to load, spills, and lock
        // waits than long ones (the paper observes the wild run-to-run
        // variance specifically on long queries, §5.3): damp the load and
        // outlier multipliers for sub-second work.
        let damp = 0.25 + 0.75 * (1.0 - (-base / 30.0).exp());
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let effective_load = 1.0 + (load_factor - 1.0) * damp;
        let mut t = base * effective_load * (sigma * z).exp();
        if rng.gen_range(0.0..1.0) < self.outlier_prob {
            let m: f64 = rng.gen_range(2.0..6.0);
            t *= 1.0 + (m - 1.0) * damp;
        }
        t.max(1e-4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::NodeType;
    use rand::SeedableRng;
    use stage_plan::{PlanBuilder, S3Format};

    fn spec(n_nodes: u32) -> InstanceSpec {
        InstanceSpec {
            id: 0,
            node_type: NodeType::Ra3_4Xl,
            n_nodes,
            memory_gb: 96.0 * n_nodes as f64,
        }
    }

    fn neutral_truth() -> InstanceTruth {
        InstanceTruth {
            global_factor: 1.0,
            category_factors: [1.0; stage_plan::OperatorCategory::COUNT],
            fixed_overhead_secs: 0.01,
        }
    }

    fn simple_plan(rows: f64) -> (PhysicalPlan, Vec<f64>, Vec<f64>) {
        let plan = PlanBuilder::select()
            .scan("t", S3Format::Local, rows, 64.0)
            .aggregate()
            .finish();
        let true_rows: Vec<f64> = plan.iter_preorder().map(|n| n.est_rows).collect();
        let scanned = scans_read_everything(&plan);
        (plan, true_rows, scanned)
    }

    /// Test helper: scans read their full output (no pruning), others 0.
    fn scans_read_everything(plan: &PhysicalPlan) -> Vec<f64> {
        plan.iter_preorder()
            .map(|n| {
                if n.op.is_base_table_scan() {
                    n.est_rows
                } else {
                    0.0
                }
            })
            .collect()
    }

    #[test]
    fn bigger_scans_take_longer() {
        let m = CostTruthModel::default();
        let (p1, r1, s1) = simple_plan(1e4);
        let (p2, r2, s2) = simple_plan(1e7);
        let t1 = m.base_exec_time(&p1, &r1, &s1, &spec(4), &neutral_truth());
        let t2 = m.base_exec_time(&p2, &r2, &s2, &spec(4), &neutral_truth());
        assert!(t2 > 10.0 * t1, "t1={t1} t2={t2}");
    }

    #[test]
    fn more_nodes_run_faster() {
        let m = CostTruthModel::default();
        let (p, r, sc) = simple_plan(1e7);
        let t_small = m.base_exec_time(&p, &r, &sc, &spec(2), &neutral_truth());
        let t_big = m.base_exec_time(&p, &r, &sc, &spec(16), &neutral_truth());
        assert!(t_big < t_small / 4.0, "small={t_small} big={t_big}");
    }

    #[test]
    fn hidden_factors_change_truth() {
        let m = CostTruthModel::default();
        let (p, r, sc) = simple_plan(1e6);
        let mut slow = neutral_truth();
        slow.global_factor = 3.0;
        let t_fast = m.base_exec_time(&p, &r, &sc, &spec(4), &neutral_truth());
        let t_slow = m.base_exec_time(&p, &r, &sc, &spec(4), &slow);
        assert!(t_slow > 2.0 * t_fast);
    }

    #[test]
    fn spill_penalizes_sort_heavy_plans() {
        let m = CostTruthModel::default();
        // Sort over an intermediate far larger than the memory budget.
        let plan = PlanBuilder::select()
            .scan("t", S3Format::Local, 1e9, 512.0)
            .sort()
            .finish();
        let true_rows: Vec<f64> = plan.iter_preorder().map(|n| n.est_rows).collect();
        let tiny = InstanceSpec {
            memory_gb: 10.0,
            ..spec(2)
        };
        let roomy = InstanceSpec {
            memory_gb: 1e6,
            ..spec(2)
        };
        let scanned = scans_read_everything(&plan);
        let t_tiny = m.base_exec_time(&plan, &true_rows, &scanned, &tiny, &neutral_truth());
        let t_roomy = m.base_exec_time(&plan, &true_rows, &scanned, &roomy, &neutral_truth());
        assert!(t_tiny > 1.5 * t_roomy, "tiny={t_tiny} roomy={t_roomy}");
    }

    #[test]
    fn s3_text_scans_slower_than_local() {
        let m = CostTruthModel::default();
        let local = PlanBuilder::select()
            .scan("t", S3Format::Local, 1e6, 64.0)
            .finish();
        let text = PlanBuilder::select()
            .scan("t", S3Format::Text, 1e6, 64.0)
            .finish();
        let rows_l: Vec<f64> = local.iter_preorder().map(|n| n.est_rows).collect();
        let rows_t: Vec<f64> = text.iter_preorder().map(|n| n.est_rows).collect();
        let tl = m.base_exec_time(
            &local,
            &rows_l,
            &scans_read_everything(&local),
            &spec(4),
            &neutral_truth(),
        );
        let tt = m.base_exec_time(
            &text,
            &rows_t,
            &scans_read_everything(&text),
            &spec(4),
            &neutral_truth(),
        );
        assert!(tt > 2.0 * tl, "local={tl} text={tt}");
    }

    #[test]
    fn noise_spreads_more_for_long_queries() {
        // Outliers off: they are rare but huge, and would dominate the CV
        // estimate at this sample size.
        let m = CostTruthModel {
            outlier_prob: 0.0,
            ..CostTruthModel::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let (ps, rs, ss) = simple_plan(1e4); // short
        let (pl, rl, sl) = simple_plan(5e8); // long
        let sample = |p: &PhysicalPlan, r: &[f64], sc: &[f64], rng: &mut StdRng| -> Vec<f64> {
            (0..1000)
                .map(|_| m.exec_time(p, r, sc, &spec(4), &neutral_truth(), 1.0, rng))
                .collect()
        };
        let cv = |xs: &[f64]| -> f64 {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            var.sqrt() / mean
        };
        let cv_short = cv(&sample(&ps, &rs, &ss, &mut rng));
        let cv_long = cv(&sample(&pl, &rl, &sl, &mut rng));
        assert!(
            cv_long > cv_short,
            "long queries should be noisier: short={cv_short} long={cv_long}"
        );
    }

    #[test]
    fn exec_time_positive_and_scales_with_load() {
        let m = CostTruthModel {
            outlier_prob: 0.0,
            sigma_short: 0.0,
            sigma_long_extra: 0.0,
            ..CostTruthModel::default()
        };
        let mut rng = StdRng::seed_from_u64(2);
        let (p, r, sc) = simple_plan(1e6);
        let t1 = m.exec_time(&p, &r, &sc, &spec(4), &neutral_truth(), 1.0, &mut rng);
        let t2 = m.exec_time(&p, &r, &sc, &spec(4), &neutral_truth(), 2.0, &mut rng);
        assert!(t1 > 0.0);
        // Load impact is duration-damped: ratio = 1 + damp, with
        // damp ∈ [0.25, 1], so doubling the load raises exec-time by
        // between 25% and 100%.
        let ratio = t2 / t1;
        assert!((1.25 - 1e-9..=2.0 + 1e-9).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn load_profile_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let lp = LoadProfile::sample(&mut rng);
        for t in [0.0, 10_000.0, 50_000.0, 86_400.0] {
            let d = lp.diurnal(t);
            assert!(d >= 1.0 - lp.amplitude - 1e-9);
            assert!(d <= 1.0 + lp.amplitude + 1e-9);
            assert!(lp.factor(t, &mut rng) > 0.0);
            assert!(lp.concurrency(d, &mut rng) >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "align")]
    fn misaligned_true_rows_rejected() {
        let m = CostTruthModel::default();
        let (p, _, _) = simple_plan(100.0);
        m.base_exec_time(&p, &[1.0], &[1.0], &spec(2), &neutral_truth());
    }
}
