//! Instance specifications (public) and per-instance truth factors (hidden).
//!
//! The *spec* is what Redshift's predictors can see: node type, node count,
//! memory — the global model's "system feature vector" ingredients (§4.4).
//! The *truth* is what they cannot: hidden per-operator-category speed
//! multipliers standing in for hardware generation, data layout, tuning, and
//! tenancy effects. The paper observed "nearly identical query plans … from
//! different customers with drastically different performances" (§5.4);
//! these hidden factors reproduce that phenomenon.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stage_plan::OperatorCategory;

/// Redshift node types modeled by the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeType {
    /// ra3.xlplus — small RA3.
    Ra3XlPlus,
    /// ra3.4xlarge.
    Ra3_4Xl,
    /// ra3.16xlarge.
    Ra3_16Xl,
    /// dc2.8xlarge — previous-generation dense compute.
    Dc2_8Xl,
}

impl NodeType {
    /// Number of node types (one-hot width in system features).
    pub const COUNT: usize = 4;

    /// All node types.
    pub const ALL: [NodeType; Self::COUNT] = [
        NodeType::Ra3XlPlus,
        NodeType::Ra3_4Xl,
        NodeType::Ra3_16Xl,
        NodeType::Dc2_8Xl,
    ];

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        match self {
            NodeType::Ra3XlPlus => 0,
            NodeType::Ra3_4Xl => 1,
            NodeType::Ra3_16Xl => 2,
            NodeType::Dc2_8Xl => 3,
        }
    }

    /// Relative per-node compute throughput (ra3.4xlarge = 1.0).
    pub fn relative_speed(self) -> f64 {
        match self {
            NodeType::Ra3XlPlus => 0.45,
            NodeType::Ra3_4Xl => 1.0,
            NodeType::Ra3_16Xl => 3.6,
            NodeType::Dc2_8Xl => 1.4,
        }
    }

    /// Memory per node in GB.
    pub fn memory_gb(self) -> f64 {
        match self {
            NodeType::Ra3XlPlus => 32.0,
            NodeType::Ra3_4Xl => 96.0,
            NodeType::Ra3_16Xl => 384.0,
            NodeType::Dc2_8Xl => 244.0,
        }
    }
}

/// Publicly visible instance configuration (feeds the GCN system features).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Fleet-unique id.
    pub id: u32,
    /// Node type.
    pub node_type: NodeType,
    /// Number of compute nodes.
    pub n_nodes: u32,
    /// Total cluster memory in GB.
    pub memory_gb: f64,
}

/// Width of [`InstanceSpec::system_features`].
pub const INSTANCE_FEATURE_DIM: usize = NodeType::COUNT + 3;

impl InstanceSpec {
    /// Samples a plausible cluster spec.
    pub fn sample(id: u32, rng: &mut StdRng) -> Self {
        let node_type = NodeType::ALL[rng.gen_range(0..NodeType::COUNT)];
        let n_nodes = match node_type {
            NodeType::Ra3_16Xl => rng.gen_range(2..16),
            _ => rng.gen_range(2..32),
        };
        Self {
            id,
            node_type,
            n_nodes,
            memory_gb: node_type.memory_gb() * n_nodes as f64,
        }
    }

    /// System feature vector: node-type one-hot, node count, ln(memory),
    /// and the concurrency level at prediction time (paper §4.4 lists
    /// "Redshift instance type, number of Redshift nodes, memory size, and
    /// number of concurrent queries").
    pub fn system_features(&self, concurrency: u32) -> Vec<f64> {
        let mut v = vec![0.0; INSTANCE_FEATURE_DIM];
        v[self.node_type.index()] = 1.0;
        v[NodeType::COUNT] = self.n_nodes as f64;
        v[NodeType::COUNT + 1] = self.memory_gb.ln_1p();
        v[NodeType::COUNT + 2] = concurrency as f64;
        v
    }

    /// Aggregate cluster throughput relative to one ra3.4xlarge node.
    pub fn cluster_speed(&self) -> f64 {
        self.node_type.relative_speed() * self.n_nodes as f64
    }
}

/// Hidden per-instance truth factors. Never exposed to predictors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceTruth {
    /// Global speed multiplier (tenancy, tuning): lognormal around 1.
    pub global_factor: f64,
    /// Per-operator-category multipliers: lognormal around 1.
    pub category_factors: [f64; OperatorCategory::COUNT],
    /// Base per-query overhead in seconds (parse/compile/leader work).
    pub fixed_overhead_secs: f64,
}

impl InstanceTruth {
    /// Samples hidden factors. `heterogeneity` scales the lognormal σ —
    /// 0 makes all instances identical (an ablation knob); the default
    /// fleet uses 0.4.
    pub fn sample(rng: &mut StdRng, heterogeneity: f64) -> Self {
        let mut lognormal = |sigma: f64| -> f64 {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (sigma * z).exp()
        };
        let global_factor = lognormal(heterogeneity * 0.75);
        let mut category_factors = [1.0; OperatorCategory::COUNT];
        for f in &mut category_factors {
            *f = lognormal(heterogeneity);
        }
        let fixed_overhead_secs = 0.004 + lognormal(0.5) * 0.012;
        Self {
            global_factor,
            category_factors,
            fixed_overhead_secs,
        }
    }

    /// Truth multiplier for an operator category.
    pub fn category_factor(&self, cat: OperatorCategory) -> f64 {
        self.category_factors[cat.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn node_type_indices_unique() {
        let idx: std::collections::HashSet<_> = NodeType::ALL.iter().map(|t| t.index()).collect();
        assert_eq!(idx.len(), NodeType::COUNT);
    }

    #[test]
    fn spec_sampling_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        for id in 0..200 {
            let s = InstanceSpec::sample(id, &mut rng);
            assert!(s.n_nodes >= 2);
            assert!(s.memory_gb > 0.0);
            assert!(s.cluster_speed() > 0.0);
        }
    }

    #[test]
    fn system_features_layout() {
        let spec = InstanceSpec {
            id: 0,
            node_type: NodeType::Ra3_16Xl,
            n_nodes: 4,
            memory_gb: 1536.0,
        };
        let f = spec.system_features(3);
        assert_eq!(f.len(), INSTANCE_FEATURE_DIM);
        assert_eq!(f[NodeType::Ra3_16Xl.index()], 1.0);
        assert_eq!(f[..NodeType::COUNT].iter().sum::<f64>(), 1.0);
        assert_eq!(f[NodeType::COUNT], 4.0);
        assert_eq!(f[NodeType::COUNT + 2], 3.0);
    }

    #[test]
    fn truth_factors_positive_and_spread() {
        let mut rng = StdRng::seed_from_u64(2);
        let truths: Vec<InstanceTruth> = (0..100)
            .map(|_| InstanceTruth::sample(&mut rng, 0.4))
            .collect();
        for t in &truths {
            assert!(t.global_factor > 0.0);
            assert!(t.fixed_overhead_secs > 0.0);
            assert!(t.category_factors.iter().all(|&f| f > 0.0));
        }
        // Heterogeneity: scan factors should spread across instances.
        let scans: Vec<f64> = truths
            .iter()
            .map(|t| t.category_factor(OperatorCategory::Scan))
            .collect();
        let min = scans.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = scans.iter().cloned().fold(0.0f64, f64::max);
        assert!(max / min > 2.0, "hidden factors too uniform: {min}..{max}");
    }

    #[test]
    fn zero_heterogeneity_means_uniform_categories() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = InstanceTruth::sample(&mut rng, 0.0);
        assert!(t.category_factors.iter().all(|&f| (f - 1.0).abs() < 1e-12));
        assert!((t.global_factor - 1.0).abs() < 1e-12);
    }
}
