//! Fleet assembly: instances, schedules, stats refresh, and event logs.
//!
//! [`Fleet::generate`] builds `n_instances` independent instance workloads;
//! each [`InstanceWorkload`] holds the public spec, the hidden truth, and a
//! time-ordered log of [`QueryEvent`]s — the synthetic analogue of the
//! paper's replayed production query logs (§5.1). Optimizer statistics are
//! refreshed once per simulated day, so plans of repeating queries stay
//! bit-identical within a day (cache hits) and shift when stats catch up
//! with table growth.

use crate::instance::{InstanceSpec, InstanceTruth};
use crate::template::{TableState, Template, TemplateKind};
use crate::truth::{CostTruthModel, LoadProfile};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stage_plan::PhysicalPlan;

/// Fleet-generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetConfig {
    /// Number of instances.
    pub n_instances: usize,
    /// Simulated duration in days.
    pub duration_days: f64,
    /// Master seed; instance `i` derives `splitmix(seed, i)`.
    pub seed: u64,
    /// Hidden-factor spread (0 = homogeneous fleet; default 0.4).
    pub heterogeneity: f64,
    /// Dashboard templates per instance (inclusive range).
    pub dashboards: (usize, usize),
    /// Report templates per instance.
    pub reports: (usize, usize),
    /// Ad-hoc templates per instance.
    pub adhoc: (usize, usize),
    /// ETL templates per instance.
    pub etl: (usize, usize),
    /// Tables per instance.
    pub tables: (usize, usize),
    /// Multiplier on every table's sampled growth rate (1.0 = as sampled;
    /// the drift ablation raises this to stress stats staleness).
    pub growth_boost: f64,
    /// Provisioning band: instances whose estimated slot utilization
    /// exceeds this are regenerated with more nodes (see
    /// [`InstanceWorkload::generate`]).
    pub max_utilization: f64,
    /// Hard cap on events per instance (memory guard).
    pub max_events_per_instance: usize,
    /// Cost-truth noise and outlier configuration.
    pub truth_model: CostTruthModel,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            n_instances: 20,
            duration_days: 3.0,
            seed: 42,
            heterogeneity: 0.4,
            dashboards: (150, 500),
            reports: (10, 40),
            adhoc: (20, 60),
            etl: (2, 8),
            tables: (3, 9),
            growth_boost: 1.0,
            max_utilization: 0.45,
            max_events_per_instance: 50_000,
            truth_model: CostTruthModel::default(),
        }
    }
}

impl FleetConfig {
    /// A small configuration for unit tests and examples.
    pub fn tiny() -> Self {
        Self {
            n_instances: 3,
            duration_days: 1.0,
            dashboards: (3, 8),
            reports: (1, 4),
            adhoc: (1, 4),
            etl: (1, 2),
            ..Self::default()
        }
    }
}

/// One executed query in an instance's log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryEvent {
    /// Owning instance.
    pub instance_id: u32,
    /// Originating template.
    pub template_id: u32,
    /// Arrival time in seconds since simulation start.
    pub arrival_secs: f64,
    /// The optimizer-produced plan (what predictors see).
    pub plan: PhysicalPlan,
    /// Hidden true per-node cardinalities (pre-order) — available to
    /// what-if analyses, never to predictors.
    pub true_rows: Vec<f64>,
    /// Hidden rows actually read per base-table scan (pre-order; 0 for
    /// non-scan nodes).
    pub scanned_rows: Vec<f64>,
    /// Ground-truth exec-time in seconds (what the executor "observed").
    pub true_exec_secs: f64,
    /// Concurrency level at arrival (a system feature).
    pub concurrency: u32,
}

/// One instance's complete workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InstanceWorkload {
    /// Public cluster spec.
    pub spec: InstanceSpec,
    /// Hidden truth factors (exposed for ablations; predictors must not
    /// read these).
    pub truth: InstanceTruth,
    /// Load profile.
    pub load: LoadProfile,
    /// Schema.
    pub tables: Vec<TableState>,
    /// Query templates.
    pub templates: Vec<Template>,
    /// Time-ordered query log.
    pub events: Vec<QueryEvent>,
}

impl InstanceWorkload {
    /// Generates instance `instance_id` of the fleet described by `config`.
    /// Deterministic per `(config.seed, instance_id)` — instances can be
    /// generated independently and streamed to bound memory.
    ///
    /// Instances are *workload-provisioned*: if the sampled cluster cannot
    /// sustain the sampled workload (estimated slot utilization above
    /// [`FleetConfig::max_utilization`]), the cluster is regenerated with
    /// enough nodes to bring utilization into band — customers size their
    /// clusters to their workloads, and the paper's top-billed instances
    /// are by construction clusters that successfully run theirs.
    pub fn generate(config: &FleetConfig, instance_id: u32) -> Self {
        let w = Self::generate_with_nodes(config, instance_id, None);
        let util = w.utilization_estimate(config);
        if util <= config.max_utilization {
            return w;
        }
        // Invert exec ∝ speed^{-e}: util scales by (n_old/n_new)^e.
        let e = config.truth_model.speed_exponent.max(0.1);
        let boost = (util / (config.max_utilization * 0.75)).powf(1.0 / e);
        let n_nodes = ((w.spec.n_nodes as f64 * boost).ceil() as u32).clamp(2, 128);
        Self::generate_with_nodes(config, instance_id, Some(n_nodes))
    }

    /// Estimated slot utilization: total exec-seconds over the capacity of
    /// a reference 6-slot workload manager across the simulated duration.
    pub fn utilization_estimate(&self, config: &FleetConfig) -> f64 {
        const REFERENCE_SLOTS: f64 = 6.0;
        let total_exec: f64 = self.events.iter().map(|e| e.true_exec_secs).sum();
        total_exec / (config.duration_days * 86_400.0 * REFERENCE_SLOTS)
    }

    /// Generation with an optional node-count override (provisioning pass).
    fn generate_with_nodes(
        config: &FleetConfig,
        instance_id: u32,
        n_nodes_override: Option<u32>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(splitmix(config.seed, instance_id as u64));
        let mut spec = InstanceSpec::sample(instance_id, &mut rng);
        if let Some(n) = n_nodes_override {
            spec.n_nodes = n;
            spec.memory_gb = spec.node_type.memory_gb() * n as f64;
        }
        let spec = spec;
        let truth = InstanceTruth::sample(&mut rng, config.heterogeneity);
        let load = LoadProfile::sample(&mut rng);
        let n_tables = rng.gen_range(config.tables.0..=config.tables.1);
        let tables: Vec<TableState> = (0..n_tables)
            .map(|_| {
                let mut t = TableState::sample(&mut rng);
                t.growth_per_day *= config.growth_boost;
                t
            })
            .collect();

        let mut templates = Vec::new();
        let mut next_id = 0u32;
        let mut add = |kind: TemplateKind,
                       range: (usize, usize),
                       rng: &mut StdRng,
                       templates: &mut Vec<Template>| {
            let n = rng.gen_range(range.0..=range.1);
            for _ in 0..n {
                templates.push(Template::sample(next_id, kind, &tables, rng));
                next_id += 1;
            }
        };
        add(
            TemplateKind::Dashboard,
            config.dashboards,
            &mut rng,
            &mut templates,
        );
        add(
            TemplateKind::Report,
            config.reports,
            &mut rng,
            &mut templates,
        );
        add(TemplateKind::AdHoc, config.adhoc, &mut rng, &mut templates);
        add(TemplateKind::Etl, config.etl, &mut rng, &mut templates);

        // Dashboard panels refresh together: with probability 0.6 a
        // dashboard template joins the previous dashboard's schedule, so
        // whole panels arrive as synchronized bursts — the queueing pressure
        // the workload manager exists to absorb.
        let mut last_dashboard_schedule: Option<crate::template::Schedule> = None;
        for tpl in templates
            .iter_mut()
            .filter(|t| t.kind == TemplateKind::Dashboard)
        {
            if let Some(shared) = last_dashboard_schedule {
                if rng.gen_range(0.0..1.0) < 0.6 {
                    tpl.schedule = shared;
                }
            }
            last_dashboard_schedule = Some(tpl.schedule);
        }

        // Workload churn: ~30% of templates are "new" — created partway
        // through the replay. Their first executions are novel queries that
        // stress cold-start behaviour (paper §2.1).
        let duration_secs = config.duration_days * 86_400.0;
        for tpl in &mut templates {
            if rng.gen_range(0.0..1.0) < 0.3 {
                tpl.active_from_secs = rng.gen_range(0.0..duration_secs * 0.8);
            }
        }

        // Collect (arrival, template index) pairs.
        let mut arrivals: Vec<(f64, usize)> = Vec::new();
        for (ti, tpl) in templates.iter().enumerate() {
            for t in tpl.schedule.arrivals(duration_secs, &mut rng) {
                if t >= tpl.active_from_secs {
                    arrivals.push((t, ti));
                }
            }
        }
        arrivals.sort_by(|a, b| a.0.total_cmp(&b.0));
        arrivals.truncate(config.max_events_per_instance);

        // Replay with daily statistics refresh.
        let mut stats_rows: Vec<f64> = tables.iter().map(|t| t.rows_at_t0).collect();
        let mut stats_day = 0u64;
        let mut events = Vec::with_capacity(arrivals.len());
        for (t, ti) in arrivals {
            let day = (t / 86_400.0) as u64;
            if day != stats_day {
                stats_day = day;
                let day_start = day as f64 * 86_400.0;
                for (sr, table) in stats_rows.iter_mut().zip(&tables) {
                    *sr = table.true_rows(day_start);
                }
            }
            let tpl = &templates[ti];
            let q = tpl.instantiate(&tables, &stats_rows, t, &mut rng);
            let load_factor = load.factor(t, &mut rng);
            let concurrency = load.concurrency(load_factor, &mut rng);
            let true_exec_secs = config.truth_model.exec_time(
                &q.plan,
                &q.true_rows,
                &q.scanned_rows,
                &spec,
                &truth,
                load_factor,
                &mut rng,
            ) * tpl.latent_factor();
            events.push(QueryEvent {
                instance_id,
                template_id: tpl.id,
                arrival_secs: t,
                plan: q.plan,
                true_rows: q.true_rows,
                scanned_rows: q.scanned_rows,
                true_exec_secs,
                concurrency,
            });
        }
        Self {
            spec,
            truth,
            load,
            tables,
            templates,
            events,
        }
    }
}

/// A generated fleet: all instances and their logs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fleet {
    /// Generation parameters.
    pub config: FleetConfig,
    /// Instance workloads, by id.
    pub instances: Vec<InstanceWorkload>,
}

impl Fleet {
    /// Generates the whole fleet eagerly. For large configurations prefer
    /// streaming instances via [`InstanceWorkload::generate`].
    pub fn generate(config: FleetConfig) -> Self {
        let instances = (0..config.n_instances as u32)
            .map(|id| InstanceWorkload::generate(&config, id))
            .collect();
        Self { config, instances }
    }

    /// Total number of query events across the fleet.
    pub fn total_events(&self) -> usize {
        self.instances.iter().map(|i| i.events.len()).sum()
    }
}

/// SplitMix64 seed derivation (same scheme as `stage-gbdt`).
pub(crate) fn splitmix(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(k.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_time_ordered_and_consistent() {
        let w = InstanceWorkload::generate(&FleetConfig::tiny(), 0);
        assert!(!w.events.is_empty());
        for pair in w.events.windows(2) {
            assert!(pair[1].arrival_secs >= pair[0].arrival_secs);
        }
        for e in &w.events {
            assert_eq!(e.true_rows.len(), e.plan.node_count());
            assert!(e.true_exec_secs > 0.0 && e.true_exec_secs.is_finite());
            assert!(e.concurrency >= 1);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = FleetConfig::tiny();
        let a = InstanceWorkload::generate(&cfg, 1);
        let b = InstanceWorkload::generate(&cfg, 1);
        assert_eq!(a.events.len(), b.events.len());
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.arrival_secs, y.arrival_secs);
            assert_eq!(x.true_exec_secs, y.true_exec_secs);
            assert_eq!(x.template_id, y.template_id);
        }
    }

    #[test]
    fn instances_differ() {
        let cfg = FleetConfig::tiny();
        let a = InstanceWorkload::generate(&cfg, 0);
        let b = InstanceWorkload::generate(&cfg, 1);
        // Different specs or different event counts with overwhelming odds.
        assert!(
            a.events.len() != b.events.len()
                || a.spec.n_nodes != b.spec.n_nodes
                || a.spec.node_type != b.spec.node_type
        );
    }

    #[test]
    fn fleet_aggregates_instances() {
        let fleet = Fleet::generate(FleetConfig::tiny());
        assert_eq!(fleet.instances.len(), 3);
        assert_eq!(
            fleet.total_events(),
            fleet
                .instances
                .iter()
                .map(|i| i.events.len())
                .sum::<usize>()
        );
        // Streaming API matches eager generation.
        let streamed = InstanceWorkload::generate(&fleet.config, 2);
        assert_eq!(streamed.events.len(), fleet.instances[2].events.len());
    }

    #[test]
    fn provisioning_bounds_utilization() {
        let cfg = FleetConfig {
            n_instances: 6,
            duration_days: 1.0,
            ..FleetConfig::default()
        };
        for id in 0..6u32 {
            let w = InstanceWorkload::generate(&cfg, id);
            let util = w.utilization_estimate(&cfg);
            // One provisioning pass with a 0.75 safety factor: allow slack
            // for noise between passes, but gross overload must be gone.
            assert!(
                util < cfg.max_utilization * 1.6,
                "instance {id} still overloaded: {util:.2}"
            );
        }
    }

    #[test]
    fn event_cap_respected() {
        let cfg = FleetConfig {
            max_events_per_instance: 10,
            ..FleetConfig::tiny()
        };
        let w = InstanceWorkload::generate(&cfg, 0);
        assert!(w.events.len() <= 10);
    }

    #[test]
    fn latencies_span_orders_of_magnitude() {
        let cfg = FleetConfig {
            n_instances: 6,
            duration_days: 1.0,
            ..FleetConfig::default()
        };
        let fleet = Fleet::generate(cfg);
        let mut all: Vec<f64> = fleet
            .instances
            .iter()
            .flat_map(|i| i.events.iter().map(|e| e.true_exec_secs))
            .collect();
        all.sort_by(f64::total_cmp);
        assert!(
            all.len() > 500,
            "need a meaningful sample, got {}",
            all.len()
        );
        let p10 = all[all.len() / 10];
        let p99 = all[all.len() * 99 / 100];
        assert!(
            p99 / p10 > 100.0,
            "latency skew too small: p10={p10} p99={p99}"
        );
        // Short end should be sub-second (dashboards).
        assert!(p10 < 1.0, "p10={p10}");
    }
}
