//! Query templates: the repetition structure of analytic workloads.
//!
//! Redshift customers mostly run dashboards and reports — identical SQL
//! (including parameter values) re-issued on a schedule (paper §3, Fig. 1a).
//! A [`Template`] captures one such recurring query: a fixed plan *shape*
//! (join count, aggregation, sort, …) over fixed tables with fixed
//! selectivities, plus a schedule. Ad-hoc templates re-draw their parameters
//! per execution, producing unique plans that miss the exec-time cache but
//! remain "similar to past-seen queries" — the local model's fuzzy-cache
//! regime (§4.3).
//!
//! Each template also carries fixed per-node *cardinality estimation errors*
//! (the optimizer is consistently wrong in the same way for the same query,
//! more so under deeper joins), and scans drift away from their statistics
//! as tables grow between stats refreshes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use stage_plan::{PhysicalPlan, PlanBuilder, QueryType, S3Format};

/// A base table in an instance's schema.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TableState {
    /// True row count at simulation start.
    pub rows_at_t0: f64,
    /// Fractional growth per simulated day (0.02 = +2%/day).
    pub growth_per_day: f64,
    /// Average tuple width in bytes.
    pub width: f64,
    /// Storage format.
    pub format: S3Format,
}

impl TableState {
    /// Samples a plausible table: log-uniform sizes 10⁴–10⁹ rows, mostly
    /// local storage, mostly slow growth with occasional fast movers.
    pub fn sample(rng: &mut StdRng) -> Self {
        let log_rows = rng.gen_range(4.0..8.7);
        let format = match rng.gen_range(0..10) {
            0 => S3Format::Parquet,
            1 => S3Format::OpenCsv,
            _ if rng.gen_range(0..20) == 0 => S3Format::Text,
            _ => S3Format::Local,
        };
        let growth_per_day = if rng.gen_range(0..8) == 0 {
            rng.gen_range(0.1..0.4) // fast-changing table
        } else {
            rng.gen_range(0.0..0.05)
        };
        Self {
            rows_at_t0: 10f64.powf(log_rows),
            growth_per_day,
            width: rng.gen_range(16.0..512.0),
            format,
        }
    }

    /// True row count at time `t` (linear growth).
    pub fn true_rows(&self, t_secs: f64) -> f64 {
        self.rows_at_t0 * (1.0 + self.growth_per_day * t_secs / 86_400.0)
    }
}

/// Workload role of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TemplateKind {
    /// Frequently refreshed, fixed-parameter, short queries.
    Dashboard,
    /// Daily/half-daily heavier analytic queries.
    Report,
    /// Unpredictable, parameter-varying exploration.
    AdHoc,
    /// Periodic DML (INSERT/DELETE/UPDATE) maintenance.
    Etl,
}

/// When a template fires.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub enum Schedule {
    /// Fixed period with a phase offset and ±2% jitter.
    Periodic {
        /// Seconds between firings.
        period_secs: f64,
        /// Offset of the first firing.
        phase_secs: f64,
    },
    /// Memoryless arrivals.
    Poisson {
        /// Expected arrivals per second.
        rate_per_sec: f64,
    },
}

impl Schedule {
    /// All arrival times in `[0, duration_secs)`, ascending.
    pub fn arrivals(&self, duration_secs: f64, rng: &mut StdRng) -> Vec<f64> {
        let mut out = Vec::new();
        match *self {
            Schedule::Periodic {
                period_secs,
                phase_secs,
            } => {
                let mut t = phase_secs;
                while t < duration_secs {
                    let jitter = rng.gen_range(-0.02..0.02) * period_secs;
                    let at = t + jitter;
                    if (0.0..duration_secs).contains(&at) {
                        out.push(at);
                    }
                    t += period_secs;
                }
            }
            Schedule::Poisson { rate_per_sec } => {
                let mut t = 0.0;
                loop {
                    let u: f64 = rng.gen_range(1e-12..1.0);
                    t += -u.ln() / rate_per_sec;
                    if t >= duration_secs {
                        break;
                    }
                    out.push(t);
                }
            }
        }
        // `total_cmp`, not `partial_cmp(..).expect(..)`: a degenerate rate
        // producing NaN must not abort arrival generation mid-serve.
        out.sort_by(f64::total_cmp);
        out
    }
}

/// Plan shape of a template (fixed at creation).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Shape {
    n_joins: usize,
    scalar_agg: bool,
    group_agg: bool,
    group_ratio: f64,
    sort: bool,
    limit: Option<f64>,
    window: bool,
}

/// A recurring query. See the module docs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Template {
    /// Instance-unique id.
    pub id: u32,
    /// Workload role.
    pub kind: TemplateKind,
    /// When it fires.
    pub schedule: Schedule,
    /// Time before which the template does not exist yet (workload churn:
    /// customers add new dashboards/reports mid-stream; fresh templates are
    /// the cold-start / "training set catches up" stressor of §2.1).
    pub active_from_secs: f64,
    query_type: QueryType,
    /// Table ids scanned (first = probe side, rest joined in order).
    tables: Vec<usize>,
    /// Per-scan selectivity.
    selectivities: Vec<f64>,
    join_selectivity: f64,
    shape: Shape,
    /// Per-plan-node ln cardinality error, pre-order (fixed per template).
    card_log_errors: Vec<f64>,
    /// Log-normal σ of per-execution parameter jitter (0 = exact repeats).
    param_jitter: f64,
    /// Fraction of each scanned base table the executor actually reads.
    /// Dashboards filter on sort keys and prune aggressively via zone maps;
    /// reports and ETL read large fractions.
    scan_read_fraction: f64,
    /// Hidden per-template execution multiplier: predicate complexity,
    /// skew, UDFs — everything two "nearly identical plans … with
    /// drastically different performances" (paper §5.4) differ by that no
    /// featurization can see. The cache learns it after one execution;
    /// models cannot.
    latent_factor: f64,
}

/// A template expanded against concrete statistics: the optimizer-visible
/// plan plus the hidden true per-node cardinalities (pre-order).
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The plan the predictors see.
    pub plan: PhysicalPlan,
    /// True output rows per node, aligned with `plan.iter_preorder()`.
    pub true_rows: Vec<f64>,
    /// Rows each base-table scan actually reads (zone-map pruning applied;
    /// 0 for non-scan nodes), aligned with `plan.iter_preorder()`.
    pub scanned_rows: Vec<f64>,
}

impl Template {
    /// Samples a template of the given kind over `tables`.
    pub fn sample(id: u32, kind: TemplateKind, tables: &[TableState], rng: &mut StdRng) -> Self {
        let (n_joins, sel_range, jitter): (usize, (f64, f64), f64) = match kind {
            TemplateKind::Dashboard => (rng.gen_range(0..=2), (1e-5, 1e-2), 0.0),
            TemplateKind::Report => (rng.gen_range(1..=4), (1e-3, 1e-1), 0.0),
            TemplateKind::AdHoc => (rng.gen_range(0..=5), (1e-4, 0.5), 0.35),
            TemplateKind::Etl => (rng.gen_range(0..=1), (1e-2, 0.5), 0.0),
        };
        let n_scans = n_joins + 1;
        let table_ids: Vec<usize> = (0..n_scans)
            .map(|_| rng.gen_range(0..tables.len()))
            .collect();
        let selectivities: Vec<f64> = (0..n_scans)
            .map(|_| {
                let (lo, hi) = sel_range;
                // Log-uniform selectivity.
                (lo.ln() + rng.gen_range(0.0f64..1.0) * (hi.ln() - lo.ln())).exp()
            })
            .collect();
        let query_type = match kind {
            TemplateKind::Etl => match rng.gen_range(0..3) {
                0 => QueryType::Insert,
                1 => QueryType::Delete,
                _ => QueryType::Update,
            },
            _ => QueryType::Select,
        };
        let shape = Shape {
            n_joins,
            scalar_agg: kind != TemplateKind::Etl && rng.gen_range(0..4) == 0,
            group_agg: kind != TemplateKind::Etl && rng.gen_range(0..2) == 0,
            group_ratio: rng.gen_range(0.001..0.2),
            sort: rng.gen_range(0..3) == 0,
            limit: if kind == TemplateKind::Dashboard && rng.gen_range(0..2) == 0 {
                Some(10f64.powf(rng.gen_range(1.0..3.0)).round())
            } else {
                None
            },
            window: kind == TemplateKind::Report && rng.gen_range(0..4) == 0,
        };
        let schedule = match kind {
            TemplateKind::Dashboard => {
                const PERIODS: [f64; 6] =
                    [7_200.0, 14_400.0, 21_600.0, 43_200.0, 86_400.0, 86_400.0];
                let period = PERIODS[rng.gen_range(0..PERIODS.len())];
                Schedule::Periodic {
                    period_secs: period,
                    phase_secs: rng.gen_range(0.0..period),
                }
            }
            TemplateKind::Report => {
                let period = if rng.gen_range(0..2) == 0 {
                    43_200.0
                } else {
                    86_400.0
                };
                Schedule::Periodic {
                    period_secs: period,
                    phase_secs: rng.gen_range(0.0..period),
                }
            }
            TemplateKind::AdHoc => Schedule::Poisson {
                rate_per_sec: rng.gen_range(0.1..0.8) / 3600.0,
            },
            TemplateKind::Etl => {
                const PERIODS: [f64; 3] = [3600.0, 21_600.0, 86_400.0];
                let period = PERIODS[rng.gen_range(0..PERIODS.len())];
                Schedule::Periodic {
                    period_secs: period,
                    phase_secs: rng.gen_range(0.0..period),
                }
            }
        };

        let scan_read_fraction = match kind {
            TemplateKind::Dashboard => {
                let log = rng.gen_range(-2.3f64..-0.52); // 0.5% .. 30%
                10f64.powf(log)
            }
            TemplateKind::Report => rng.gen_range(0.3..1.0),
            TemplateKind::AdHoc => {
                let log = rng.gen_range(-2.0f64..-0.3); // 1% .. 50%
                10f64.powf(log)
            }
            TemplateKind::Etl => rng.gen_range(0.1..0.8),
        };
        let latent_factor = {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (0.9 * z).exp()
        };
        let mut template = Self {
            id,
            kind,
            schedule,
            active_from_secs: 0.0,
            latent_factor,
            query_type,
            tables: table_ids,
            selectivities,
            join_selectivity: rng.gen_range(0.01..0.5),
            shape,
            card_log_errors: Vec::new(),
            param_jitter: jitter,
            scan_read_fraction,
        };
        // Fix per-node cardinality errors: instantiate once to learn the
        // node count, then sample errors whose σ grows with join depth
        // (paper §4.3: the vector is "less representative" for many joins).
        let stats: Vec<f64> = tables.iter().map(|t| t.rows_at_t0).collect();
        let probe = template.build_plan(tables, &stats, 1.0);
        let sigma = 0.25 + 0.3 * n_joins as f64;
        template.card_log_errors = (0..probe.node_count())
            .map(|_| {
                let u1: f64 = rng.gen_range(1e-12..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        template
    }

    /// Statement type of this template's queries.
    pub fn query_type(&self) -> QueryType {
        self.query_type
    }

    /// Whether parameters vary per execution (ad-hoc).
    pub fn is_parameterized(&self) -> bool {
        self.param_jitter > 0.0
    }

    /// Hidden execution multiplier (see the field docs). Exposed for the
    /// generator and for ablations; predictors must never read it.
    pub fn latent_factor(&self) -> f64 {
        self.latent_factor
    }

    /// Builds the optimizer-visible plan from per-table *statistics* rows.
    fn build_plan(&self, tables: &[TableState], stats_rows: &[f64], jitter: f64) -> PhysicalPlan {
        let mut b = PlanBuilder::new(self.query_type);
        let scan = |b: PlanBuilder, i: usize, jitter: f64| -> PlanBuilder {
            let tid = self.tables[i];
            let t = &tables[tid];
            let out = (stats_rows[tid] * self.selectivities[i] * jitter).max(1.0);
            b.scan_with_table_rows(t.format, out, stats_rows[tid], t.width)
        };
        b = scan(b, 0, jitter);
        for j in 1..=self.shape.n_joins {
            b = scan(b, j, jitter);
            b = b.hash_join(self.join_selectivity);
        }
        if self.shape.group_agg {
            b = b.hash_aggregate(self.shape.group_ratio);
        }
        if self.shape.scalar_agg {
            b = b.aggregate();
        }
        if self.shape.window {
            b = b.window();
        }
        if self.shape.sort {
            b = b.sort();
        }
        if let Some(n) = self.shape.limit {
            b = b.limit(n);
        }
        b = b.dml();
        b.finish()
    }

    /// Expands the template at time `t`.
    ///
    /// * `stats_rows[i]` — per-table row counts the *optimizer* believes
    ///   (refreshed daily by the generator);
    /// * true cardinalities apply the template's fixed estimation errors and
    ///   a drift factor `true_rows(t)/stats_rows` averaged over the scanned
    ///   tables.
    pub fn instantiate(
        &self,
        tables: &[TableState],
        stats_rows: &[f64],
        t_secs: f64,
        rng: &mut StdRng,
    ) -> GeneratedQuery {
        let jitter = if self.param_jitter > 0.0 {
            let u1: f64 = rng.gen_range(1e-12..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (self.param_jitter * z).exp()
        } else {
            1.0
        };
        let plan = self.build_plan(tables, stats_rows, jitter);

        // Drift of truth away from statistics, averaged over scanned tables.
        let drift: f64 = self
            .tables
            .iter()
            .map(|&tid| tables[tid].true_rows(t_secs) / stats_rows[tid].max(1.0))
            .sum::<f64>()
            / self.tables.len() as f64;

        let mut true_rows = Vec::with_capacity(plan.node_count());
        let mut scanned_rows = Vec::with_capacity(plan.node_count());
        for (i, node) in plan.iter_preorder().enumerate() {
            let err = self.card_log_errors.get(i).copied().unwrap_or(0.0).exp();
            let out_rows = (node.est_rows * err * drift).max(1.0);
            true_rows.push(out_rows);
            // Scans read a template-specific fraction of the (drifted)
            // table, never less than what they output.
            let scanned = match (node.op.is_base_table_scan(), node.table_rows) {
                (true, Some(stats_table_rows)) => {
                    (stats_table_rows * drift * self.scan_read_fraction).max(out_rows)
                }
                _ => 0.0,
            };
            scanned_rows.push(scanned);
        }
        GeneratedQuery {
            plan,
            true_rows,
            scanned_rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use stage_plan::plan_feature_vector;

    fn tables(rng: &mut StdRng) -> Vec<TableState> {
        (0..6).map(|_| TableState::sample(rng)).collect()
    }

    #[test]
    fn dashboard_repeats_exactly() {
        let mut rng = StdRng::seed_from_u64(1);
        let ts = tables(&mut rng);
        let tpl = Template::sample(0, TemplateKind::Dashboard, &ts, &mut rng);
        let stats: Vec<f64> = ts.iter().map(|t| t.rows_at_t0).collect();
        let q1 = tpl.instantiate(&ts, &stats, 100.0, &mut rng);
        let q2 = tpl.instantiate(&ts, &stats, 200.0, &mut rng);
        let h1 = plan_feature_vector(&q1.plan).stable_hash();
        let h2 = plan_feature_vector(&q2.plan).stable_hash();
        assert_eq!(h1, h2, "same stats must produce identical dashboard plans");
    }

    #[test]
    fn adhoc_varies_per_execution() {
        let mut rng = StdRng::seed_from_u64(2);
        let ts = tables(&mut rng);
        let tpl = Template::sample(0, TemplateKind::AdHoc, &ts, &mut rng);
        assert!(tpl.is_parameterized());
        let stats: Vec<f64> = ts.iter().map(|t| t.rows_at_t0).collect();
        let hashes: std::collections::HashSet<u64> = (0..10)
            .map(|i| {
                let q = tpl.instantiate(&ts, &stats, i as f64, &mut rng);
                plan_feature_vector(&q.plan).stable_hash()
            })
            .collect();
        assert!(hashes.len() >= 9, "ad-hoc plans should be unique");
    }

    #[test]
    fn stats_refresh_changes_dashboard_plan() {
        let mut rng = StdRng::seed_from_u64(3);
        let ts = tables(&mut rng);
        let tpl = Template::sample(0, TemplateKind::Dashboard, &ts, &mut rng);
        let stats1: Vec<f64> = ts.iter().map(|t| t.rows_at_t0).collect();
        let stats2: Vec<f64> = ts.iter().map(|t| t.rows_at_t0 * 1.5).collect();
        let q1 = tpl.instantiate(&ts, &stats1, 0.0, &mut rng);
        let q2 = tpl.instantiate(&ts, &stats2, 0.0, &mut rng);
        assert_ne!(
            plan_feature_vector(&q1.plan).stable_hash(),
            plan_feature_vector(&q2.plan).stable_hash()
        );
    }

    #[test]
    fn true_rows_align_with_plan() {
        let mut rng = StdRng::seed_from_u64(4);
        let ts = tables(&mut rng);
        for kind in [
            TemplateKind::Dashboard,
            TemplateKind::Report,
            TemplateKind::AdHoc,
            TemplateKind::Etl,
        ] {
            let tpl = Template::sample(0, kind, &ts, &mut rng);
            let stats: Vec<f64> = ts.iter().map(|t| t.rows_at_t0).collect();
            let q = tpl.instantiate(&ts, &stats, 0.0, &mut rng);
            assert_eq!(q.true_rows.len(), q.plan.node_count(), "{kind:?}");
            assert!(q.true_rows.iter().all(|&r| r >= 1.0 && r.is_finite()));
        }
    }

    #[test]
    fn etl_templates_are_dml() {
        let mut rng = StdRng::seed_from_u64(5);
        let ts = tables(&mut rng);
        let tpl = Template::sample(0, TemplateKind::Etl, &ts, &mut rng);
        assert_ne!(tpl.query_type(), QueryType::Select);
    }

    #[test]
    fn drift_inflates_true_rows() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut ts = tables(&mut rng);
        for t in &mut ts {
            t.growth_per_day = 1.0; // double per day
        }
        let tpl = Template::sample(0, TemplateKind::Dashboard, &ts, &mut rng);
        let stats: Vec<f64> = ts.iter().map(|t| t.rows_at_t0).collect();
        let q_now = tpl.instantiate(&ts, &stats, 0.0, &mut rng);
        let q_later = tpl.instantiate(&ts, &stats, 86_400.0, &mut rng);
        let sum_now: f64 = q_now.true_rows.iter().sum();
        let sum_later: f64 = q_later.true_rows.iter().sum();
        assert!(sum_later > 1.5 * sum_now, "now={sum_now} later={sum_later}");
        // Same plan (stale stats), different truth.
        assert_eq!(
            plan_feature_vector(&q_now.plan).stable_hash(),
            plan_feature_vector(&q_later.plan).stable_hash()
        );
    }

    #[test]
    fn periodic_schedule_spacing() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = Schedule::Periodic {
            period_secs: 3600.0,
            phase_secs: 100.0,
        };
        let arr = s.arrivals(86_400.0, &mut rng);
        assert!((23..=25).contains(&arr.len()), "{} arrivals", arr.len());
        assert!(arr.windows(2).all(|w| w[1] > w[0]));
        for w in arr.windows(2) {
            assert!((w[1] - w[0] - 3600.0).abs() < 200.0);
        }
    }

    #[test]
    fn poisson_schedule_rate() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = Schedule::Poisson {
            rate_per_sec: 10.0 / 3600.0,
        };
        let arr = s.arrivals(86_400.0 * 10.0, &mut rng);
        // Expect ~2400 arrivals over 10 days.
        assert!((2000..2900).contains(&arr.len()), "{}", arr.len());
        assert!(arr.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn latent_factors_spread_across_templates() {
        let mut rng = StdRng::seed_from_u64(10);
        let ts = tables(&mut rng);
        let factors: Vec<f64> = (0..50)
            .map(|i| Template::sample(i, TemplateKind::Dashboard, &ts, &mut rng).latent_factor())
            .collect();
        assert!(factors.iter().all(|&f| f > 0.0 && f.is_finite()));
        let min = factors.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = factors.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min > 3.0,
            "latent factors should spread widely: {min}..{max}"
        );
    }

    #[test]
    fn table_sampling_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let t = TableState::sample(&mut rng);
            assert!(t.rows_at_t0 >= 1e4 && t.rows_at_t0 <= 1e9);
            assert!(t.width >= 16.0 && t.width <= 512.0);
            assert!(t.true_rows(86_400.0) >= t.rows_at_t0);
        }
    }
}
