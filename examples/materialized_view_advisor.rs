//! Automatic materialized-view benefit estimation (paper §2.1): the advisor
//! re-plans a query *as if* a materialized view existed and asks the
//! exec-time predictor whether the rewrite is worth building — with a
//! confidence interval, because "the automatic materialized view creation
//! … need[s] a confidence interval to ensure good worst-case behavior".
//!
//! ```sh
//! cargo run --release --example materialized_view_advisor
//! ```

use stage::core::{
    estimate_benefit, ExecTimePredictor, LocalModelConfig, StageConfig, StagePredictor,
    SystemContext,
};
use stage::gbdt::{EnsembleParams, NgBoostParams};
use stage::plan::{PhysicalPlan, PlanBuilder, S3Format};

/// The original dashboard query: join + aggregate over the raw fact table.
fn raw_plan(fact_rows: f64) -> PhysicalPlan {
    PlanBuilder::select()
        .scan("clicks", S3Format::Local, fact_rows, 120.0)
        .scan("campaigns", S3Format::Local, 5_000.0, 64.0)
        .hash_join(0.3)
        .hash_aggregate(0.001)
        .sort()
        .finish()
}

/// The same query re-planned against a pre-aggregated materialized view.
fn mv_plan(fact_rows: f64) -> PhysicalPlan {
    // The MV holds one row per (campaign, day): ~0.1% of the fact table.
    PlanBuilder::select()
        .scan(
            "clicks_by_campaign_mv",
            S3Format::Local,
            fact_rows * 0.001,
            96.0,
        )
        .sort()
        .finish()
}

fn main() {
    let mut predictor = StagePredictor::new(StageConfig {
        local: LocalModelConfig {
            ensemble: EnsembleParams {
                n_members: 6,
                member: NgBoostParams {
                    n_estimators: 40,
                    ..NgBoostParams::default()
                },
                seed: 3,
            },
            min_train_examples: 30,
            retrain_interval: 200,
        },
        ..StageConfig::default()
    });
    let sys = SystemContext::empty(7);

    // Warm the local model with executions of size-varying raw queries and
    // a few small MV-style scans (exec-time ∝ processed rows).
    println!("warming the predictor with observed executions...");
    for i in 1..=80 {
        let rows = i as f64 * 2e5;
        predictor.observe(&raw_plan(rows), &sys, rows / 4e5);
        if i % 4 == 0 {
            predictor.observe(&mv_plan(rows), &sys, 0.05 + rows * 1e-9);
        }
    }

    // The advisor's what-if question, on a query size it has NOT seen.
    let fact_rows = 1.23e7;
    let baseline = raw_plan(fact_rows);
    let candidate = mv_plan(fact_rows);
    let estimate = estimate_benefit(&mut predictor, &baseline, &candidate, &sys, 1.96);

    println!(
        "\nbaseline (raw join+agg) : {:>8.2}s",
        estimate.baseline_secs
    );
    println!(
        "candidate (via MV)      : {:>8.2}s",
        estimate.candidate_secs
    );
    println!("point benefit           : {:>8.2}s", estimate.benefit_secs);
    match estimate.interval {
        Some((lo, hi)) => {
            println!("95% benefit interval    : [{lo:.2}s, {hi:.2}s]");
        }
        None => println!("95% benefit interval    : n/a (point predictions)"),
    }
    println!("speedup                 : {:>8.1}x", estimate.speedup());
    println!(
        "\nadvisor decision: {}",
        if estimate.is_robust_win() {
            "BUILD the materialized view (benefit positive even in the worst case)"
        } else {
            "do not build yet (benefit not robust at 95% confidence)"
        }
    );
}
