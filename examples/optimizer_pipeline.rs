//! The full pipeline of the paper's Fig. 3 in one example: a logical query
//! goes through the **join-order optimizer**, the resulting physical plan is
//! rendered as EXPLAIN text, shipped (parsed back), and handed to the Stage
//! predictor — exactly the parser → optimizer → exec-time-predictor path a
//! query takes inside Redshift.
//!
//! ```sh
//! cargo run --release --example optimizer_pipeline
//! ```

use stage::core::{ExecTimePredictor, StageConfig, StagePredictor, SystemContext};
use stage::plan::{optimize, parse_explain, JoinEdge, LogicalQuery, S3Format, TableRef};

fn main() {
    // A star query: a fact table with three dimensions.
    let query = LogicalQuery {
        tables: vec![
            TableRef {
                rows: 2e8,
                width: 140.0,
                format: S3Format::Local,
                filter_selectivity: 0.2,
            }, // 0: sales (fact)
            TableRef {
                rows: 2e6,
                width: 96.0,
                format: S3Format::Local,
                filter_selectivity: 1.0,
            }, // 1: customer
            TableRef {
                rows: 4e4,
                width: 64.0,
                format: S3Format::Local,
                filter_selectivity: 0.05,
            }, // 2: date_dim (one month)
            TableRef {
                rows: 1e5,
                width: 80.0,
                format: S3Format::Parquet,
                filter_selectivity: 1.0,
            }, // 3: item (external)
        ],
        joins: vec![
            JoinEdge {
                left: 0,
                right: 1,
                selectivity: 5e-7,
            },
            JoinEdge {
                left: 0,
                right: 2,
                selectivity: 2.5e-5,
            },
            JoinEdge {
                left: 0,
                right: 3,
                selectivity: 1e-5,
            },
        ],
    };

    // 1. Optimize: Selinger DP picks the join order.
    let plan = optimize(&query).expect("connected star query");
    println!("optimized physical plan:\n{plan}");

    // 2. Ship as EXPLAIN text and re-ingest (the fleet-sweep log format).
    let text = plan.explain();
    let parsed = parse_explain(&text).expect("round-trip");
    assert_eq!(parsed.node_count(), plan.node_count());

    // 3. Predict with Stage: first cold, then after executions.
    let mut predictor = StagePredictor::new(StageConfig::default());
    let sys = SystemContext::empty(7);
    let p0 = predictor.predict(&parsed, &sys);
    println!(
        "cold-start prediction : {:>8.3}s ({:?})",
        p0.exec_secs, p0.source
    );

    for observed in [38.2, 41.9, 40.1] {
        predictor.observe(&parsed, &sys, observed);
    }
    let p1 = predictor.predict(&parsed, &sys);
    println!(
        "after 3 executions    : {:>8.3}s ({:?}) — α-blend of mean and last",
        p1.exec_secs, p1.source
    );

    // 4. What the optimizer bought: compare against the worst join order by
    //    estimated cost.
    println!(
        "\noptimizer's estimated plan cost: {:.0} units over {} operators ({} joins)",
        plan.total_est_cost(),
        plan.node_count(),
        plan.join_count()
    );
}
