//! Uncertainty-aware routing (paper §4.3): watch the local model's
//! decomposed uncertainty — model (ensemble disagreement) vs data (label
//! noise) — and see how Stage uses it to decide when the expensive global
//! model is worth invoking.
//!
//! ```sh
//! cargo run --release --example uncertainty_routing
//! ```

use stage::core::{LocalModel, LocalModelConfig, PoolConfig, TrainingPool};
use stage::gbdt::{EnsembleParams, NgBoostParams};
use stage::plan::{plan_feature_vector, PlanBuilder, S3Format};

fn plan_features(scale: f64) -> Vec<f64> {
    let plan = PlanBuilder::select()
        .scan("t", S3Format::Local, 1e5 * scale, 64.0)
        .hash_aggregate(0.05)
        .finish();
    plan_feature_vector(&plan).0
}

fn main() {
    let config = LocalModelConfig {
        ensemble: EnsembleParams {
            n_members: 10,
            member: NgBoostParams {
                n_estimators: 60,
                ..NgBoostParams::default()
            },
            seed: 11,
        },
        ..LocalModelConfig::default()
    };
    let mut pool = TrainingPool::new(PoolConfig::default());
    let mut local = LocalModel::new(config);

    // Train on scales 1-20 with *scale-dependent* label noise: small
    // queries are stable, large ones vary with system load.
    let mut state = 0x1234_5678_u64;
    let mut rand01 = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64
    };
    for round in 0..40 {
        for scale_i in 1..=20 {
            let scale = scale_i as f64;
            let noise = 1.0 + (rand01() - 0.5) * 0.1 * scale; // noisier when large
            pool.add(plan_features(scale), 0.4 * scale * noise);
            let _ = round;
        }
    }
    local.retrain(&pool);
    println!("local model trained on {} examples\n", pool.len());

    println!("scale   pred(s)   model-unc   data-unc   total-std   escalate?");
    for scale in [2.0, 10.0, 18.0, 40.0, 100.0] {
        let p = local.predict(&plan_features(scale)).expect("trained model");
        // Stage escalates when predicted long AND uncertain.
        let escalate = p.exec_secs >= 5.0 && p.log_std() > 0.6;
        let marker = if scale > 20.0 {
            " <- outside training range"
        } else {
            ""
        };
        println!(
            "{scale:>5.0} {:>9.3} {:>11.4} {:>10.4} {:>11.4}   {}{marker}",
            p.exec_secs,
            p.model_uncertainty,
            p.data_uncertainty,
            p.log_std(),
            if escalate {
                "yes -> global model"
            } else {
                "no"
            },
        );
    }
    println!(
        "\nIn-range short queries stay local; big out-of-range queries show\n\
         inflated uncertainty and get escalated to the global model."
    );
}
