//! Quickstart: build physical plans, feed the Stage predictor a few
//! executions, and watch the hierarchy at work — default → cache → local.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stage::core::{ExecTimePredictor, StageConfig, StagePredictor, SystemContext};
use stage::plan::{PhysicalPlan, PlanBuilder, S3Format};

/// A dashboard-style query: scan + join + group-by, sized by `scale`.
fn dashboard_plan(scale: f64) -> PhysicalPlan {
    PlanBuilder::select()
        .scan("sales", S3Format::Local, 40_000.0 * scale, 96.0)
        .scan("stores", S3Format::Local, 500.0, 64.0)
        .hash_join(0.2)
        .hash_aggregate(0.02)
        .sort()
        .finish()
}

fn main() {
    let mut predictor = StagePredictor::new(StageConfig::default());
    let sys = SystemContext::empty(7); // no instance features in this demo

    let plan = dashboard_plan(1.0);
    println!("The query plan under prediction:\n{plan}");

    // 1. Cold start: nothing is known, the default fires.
    let p = predictor.predict(&plan, &sys);
    println!(
        "cold start  : {:>8.3}s  (source: {:?})",
        p.exec_secs, p.source
    );

    // 2. The query executes a few times (with load-induced variance) and
    //    Stage observes the outcomes.
    for secs in [2.10, 2.45, 2.30] {
        predictor.observe(&plan, &sys, secs);
    }

    // 3. An identical plan now hits the exec-time cache:
    //    α·mean + (1−α)·last with α = 0.8.
    let p = predictor.predict(&plan, &sys);
    println!(
        "after repeats: {:>7.3}s  (source: {:?})",
        p.exec_secs, p.source
    );

    // 4. Feed many *similar but distinct* queries (different scales) so the
    //    local model trains, then predict an unseen scale.
    for i in 1..=120 {
        let scale = 0.5 + (i % 40) as f64 * 0.25;
        let q = dashboard_plan(scale);
        let exec = 2.2 * scale; // truth: proportional to size
        predictor.observe(&q, &sys, exec);
    }
    let unseen = dashboard_plan(7.3);
    let p = predictor.predict(&unseen, &sys);
    println!(
        "unseen scale : {:>7.3}s  (source: {:?}, truth ≈ {:.3}s)",
        p.exec_secs,
        p.source,
        2.2 * 7.3
    );
    if let Some((lo, hi)) = p.confidence_interval(1.96) {
        println!("              95% interval: [{lo:.3}s, {hi:.3}s]");
    }

    let stats = predictor.stats();
    println!(
        "\nrouting: {} cache / {} local / {} global / {} default over {} predictions",
        stats.cache,
        stats.local,
        stats.global,
        stats.default,
        stats.total()
    );
    println!(
        "cache now holds {} unique queries ({} hits, {} misses)",
        predictor.cache().len(),
        predictor.cache().hits(),
        predictor.cache().misses()
    );
}
