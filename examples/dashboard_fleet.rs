//! Replay a synthetic Redshift instance — dashboards, reports, ad-hoc
//! queries, ETL — through the Stage predictor and the AutoWLM baseline, and
//! compare prediction accuracy (the paper's Table 1 protocol, one instance).
//!
//! ```sh
//! cargo run --release --example dashboard_fleet
//! ```

use stage::core::{
    AutoWlmConfig, AutoWlmPredictor, ExecTimePredictor, StageConfig, StagePredictor, SystemContext,
};
use stage::metrics::BucketReport;
use stage::workload::{FleetConfig, InstanceWorkload};

/// Replays a workload through a predictor (predict → execute → observe),
/// returning parallel (actual, predicted) vectors.
fn replay(
    workload: &InstanceWorkload,
    predictor: &mut dyn ExecTimePredictor,
) -> (Vec<f64>, Vec<f64>) {
    let mut actual = Vec::new();
    let mut predicted = Vec::new();
    for event in &workload.events {
        let sys = SystemContext {
            features: workload.spec.system_features(event.concurrency),
        };
        let p = predictor.predict(&event.plan, &sys);
        predictor.observe(&event.plan, &sys, event.true_exec_secs);
        actual.push(event.true_exec_secs);
        predicted.push(p.exec_secs);
    }
    (actual, predicted)
}

fn main() {
    let config = FleetConfig {
        n_instances: 1,
        duration_days: 2.0,
        ..FleetConfig::default()
    };
    let workload = InstanceWorkload::generate(&config, 0);
    println!(
        "instance: {:?} x{} nodes, {} tables, {} templates, {} queries over {} days\n",
        workload.spec.node_type,
        workload.spec.n_nodes,
        workload.tables.len(),
        workload.templates.len(),
        workload.events.len(),
        config.duration_days,
    );

    let mut stage = StagePredictor::new(StageConfig::default());
    let (actual, stage_pred) = replay(&workload, &mut stage);

    let mut autowlm = AutoWlmPredictor::new(AutoWlmConfig::default());
    let (_, auto_pred) = replay(&workload, &mut autowlm);

    let stage_report = BucketReport::from_pairs(&actual, &stage_pred).expect("non-empty");
    let auto_report = BucketReport::from_pairs(&actual, &auto_pred).expect("non-empty");
    println!(
        "{}",
        stage_report.render_abs("Stage predictor — absolute error (s)")
    );
    println!(
        "{}",
        auto_report.render_abs("AutoWLM predictor — absolute error (s)")
    );

    let stats = stage.stats();
    println!(
        "Stage routing: {:.1}% cache, {:.1}% local, {:.1}% default (paper: ~60% cache hits)",
        100.0 * stats.fraction(stage::core::PredictionSource::Cache),
        100.0 * stats.fraction(stage::core::PredictionSource::Local),
        100.0 * stats.fraction(stage::core::PredictionSource::Default),
    );
    let s = stage_report.overall().abs.expect("rows");
    let a = auto_report.overall().abs.expect("rows");
    println!(
        "overall MAE: Stage {:.3}s vs AutoWLM {:.3}s ({:.2}x)",
        s.mae,
        a.mae,
        a.mae / s.mae
    );
}
