//! End-to-end workload-manager demo (the paper's Fig. 6 protocol on one
//! instance): replay a day of queries through the AutoWLM scheduler three
//! times — once with Stage predictions, once with the AutoWLM baseline, and
//! once with oracle (true) exec-times — and compare query latency.
//!
//! ```sh
//! cargo run --release --example workload_manager
//! ```

use stage::core::{
    AutoWlmConfig, AutoWlmPredictor, ExecTimePredictor, StageConfig, StagePredictor, SystemContext,
};
use stage::wlm::{SimQuery, Simulation, WlmConfig};
use stage::workload::{FleetConfig, InstanceWorkload};

/// Replays a workload, returning the WLM input stream for the predictor.
fn predictions(
    workload: &InstanceWorkload,
    predictor: &mut dyn ExecTimePredictor,
) -> Vec<SimQuery> {
    workload
        .events
        .iter()
        .map(|event| {
            let sys = SystemContext {
                features: workload.spec.system_features(event.concurrency),
            };
            let p = predictor.predict(&event.plan, &sys);
            predictor.observe(&event.plan, &sys, event.true_exec_secs);
            SimQuery {
                arrival_secs: event.arrival_secs,
                true_exec_secs: event.true_exec_secs,
                predicted_secs: p.exec_secs,
            }
        })
        .collect()
}

fn main() {
    let workload = InstanceWorkload::generate(
        &FleetConfig {
            n_instances: 1,
            duration_days: 1.5,
            ..FleetConfig::default()
        },
        3,
    );
    println!(
        "replaying {} queries through the workload manager...\n",
        workload.events.len()
    );

    let mut stage = StagePredictor::new(StageConfig::default());
    let stage_stream = predictions(&workload, &mut stage);

    let mut auto = AutoWlmPredictor::new(AutoWlmConfig::default());
    let auto_stream = predictions(&workload, &mut auto);

    let optimal_stream: Vec<SimQuery> = stage_stream
        .iter()
        .map(|q| SimQuery {
            predicted_secs: q.true_exec_secs,
            ..*q
        })
        .collect();

    // A deliberately tight workload manager (single SQA slot with runtime
    // eviction, two long slots) so scheduling decisions are visible on one
    // instance; fleet-scale results come from the experiment harness.
    let sim = Simulation::new(WlmConfig {
        short_slots: 1,
        long_slots: 2,
        sqa_max_runtime_secs: Some(10.0),
        ..WlmConfig::default()
    });
    println!("predictor   avg-latency   p50      p90      short-queue%");
    let mut rows = Vec::new();
    for (name, stream) in [
        ("Stage", &stage_stream),
        ("AutoWLM", &auto_stream),
        ("Optimal", &optimal_stream),
    ] {
        let s = sim.summarize(stream).expect("non-empty");
        println!(
            "{name:<10} {:>10.3}s {:>8.3}s {:>8.3}s {:>10.1}%",
            s.avg_latency,
            s.p50_latency,
            s.p90_latency,
            100.0 * s.short_fraction
        );
        rows.push((name, s));
    }
    let auto_avg = rows[1].1.avg_latency;
    println!(
        "\nStage improves average latency over AutoWLM by {:+.1}% (paper fleet: ~20%)",
        100.0 * (auto_avg - rows[0].1.avg_latency) / auto_avg
    );
    println!(
        "Optimal improvement bound: {:+.1}% (paper fleet: ~44%)",
        100.0 * (auto_avg - rows[2].1.avg_latency) / auto_avg
    );
}
