//! Hierarchical cardinality estimation — the paper's §6.2 proposal applied:
//! "queries will first be fed into cheap estimators and more expensive
//! estimators will be invoked only if the previous cheaper estimator is
//! uncertain about its prediction."
//!
//! Here the *cheap* estimator is the optimizer's own estimate (free — it is
//! already in the plan), and the *expensive* estimator is a Bayesian
//! ensemble of gradient-boosted models trained on observed (plan features →
//! true root cardinality) pairs, with its uncertainty deciding when the
//! cheap estimate stands. This mirrors Stage's cache→local→global economics
//! on a different critical-path task.
//!
//! ```sh
//! cargo run --release --example hierarchical_cardinality
//! ```

use stage::gbdt::{BayesianEnsemble, Dataset, EnsembleParams, NgBoostParams};
use stage::metrics::error::q_error;
use stage::plan::plan_feature_vector;
use stage::workload::{FleetConfig, InstanceWorkload};

fn main() {
    let workload = InstanceWorkload::generate(
        &FleetConfig {
            n_instances: 1,
            duration_days: 2.0,
            seed: 17,
            ..FleetConfig::default()
        },
        0,
    );
    // Ground truth: the root operator's true output cardinality.
    let events = &workload.events;
    let split = events.len() * 2 / 3;
    println!(
        "{} queries: {} to train the learned estimator, {} to evaluate\n",
        events.len(),
        split,
        events.len() - split
    );

    // Train the expensive estimator in ln(1+rows) space.
    let mut ds = Dataset::new(stage::plan::CACHE_FEATURE_DIM);
    for e in &events[..split] {
        let features = plan_feature_vector(&e.plan);
        ds.push(features.as_slice(), e.true_rows[0].ln_1p());
    }
    let ensemble = BayesianEnsemble::fit(
        &ds,
        &EnsembleParams {
            n_members: 6,
            member: NgBoostParams {
                n_estimators: 40,
                ..NgBoostParams::default()
            },
            seed: 5,
        },
    )
    .expect("non-empty training set");

    // Evaluate three policies on held-out queries.
    let mut q_cheap = Vec::new(); // optimizer estimate only
    let mut q_learned = Vec::new(); // learned estimator always
    let mut q_hier = Vec::new(); // hierarchy: escalate when the cheap one is suspect
    let mut escalations = 0usize;
    // The cheap estimator's reliability degrades with join depth (its
    // per-join error compounds) — that is its "uncertainty signal", the
    // analogue of the paper's cheap-estimator confidence check.
    const CHEAP_TRUSTED_MAX_JOINS: usize = 1;

    for e in &events[split..] {
        let truth = e.true_rows[0].max(1.0);
        let cheap = e.plan.root.est_rows.max(1.0);
        let features = plan_feature_vector(&e.plan);
        let p = ensemble.predict(features.as_slice());
        let learned = p.mean.exp_m1().max(1.0);

        q_cheap.push(q_error(truth, cheap));
        q_learned.push(q_error(truth, learned));
        // Hierarchy: the free optimizer estimate stands for shallow plans;
        // deep joins (where compounded estimation error explodes) escalate
        // to the expensive learned estimator.
        if e.plan.join_count() > CHEAP_TRUSTED_MAX_JOINS {
            escalations += 1;
            q_hier.push(q_error(truth, learned));
        } else {
            q_hier.push(q_error(truth, cheap));
        }
    }

    let p50 = |xs: &mut Vec<f64>| {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        xs[xs.len() / 2]
    };
    let p90 = |xs: &Vec<f64>| xs[(xs.len() as f64 * 0.9) as usize];

    println!("estimator                P50 Q-error   P90 Q-error");
    for (name, xs) in [
        ("optimizer (cheap)", &mut q_cheap),
        ("learned (expensive)", &mut q_learned),
        ("hierarchical", &mut q_hier),
    ] {
        let m = p50(xs);
        println!("{name:<24} {m:>11.2} {:>13.2}", p90(xs));
    }
    println!(
        "\nlearned estimator consulted on {:.1}% of queries — the hierarchy buys\n\
         most of the learned accuracy at a fraction of its inference cost.",
        100.0 * escalations as f64 / q_hier.len() as f64
    );
}
