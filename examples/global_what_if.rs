//! "What-if" reasoning with the transferable global model (paper §6.1):
//! train the plan-GCN across several instances, then ask counterfactual
//! questions a per-instance model cannot answer — *what if this query ran on
//! a 16-node cluster instead of 4? what if the table were 5× larger?*
//!
//! The global model can answer because it observed such configurations on
//! *other* instances.
//!
//! ```sh
//! cargo run --release --example global_what_if
//! ```

use stage::core::{plan_to_tree_sample, GlobalModel, GlobalModelConfig, SystemContext};
use stage::plan::{PhysicalPlan, PlanBuilder, S3Format};
use stage::wlm::{choose_cluster_size, SizingCandidate, SizingPolicy};
use stage::workload::instance::INSTANCE_FEATURE_DIM;
use stage::workload::{FleetConfig, InstanceWorkload};

fn report_plan(scale: f64) -> PhysicalPlan {
    PlanBuilder::select()
        .scan("facts", S3Format::Local, 2e6 * scale, 128.0)
        .scan("dims", S3Format::Local, 5e4, 64.0)
        .hash_join(0.1)
        .hash_aggregate(0.01)
        .sort()
        .finish()
}

fn main() {
    // Train the global model on a handful of diverse instances.
    let fleet = FleetConfig {
        n_instances: 6,
        duration_days: 1.0,
        seed: 99,
        ..FleetConfig::default()
    };
    println!(
        "training the global model on {} instances...",
        fleet.n_instances
    );
    let mut samples = Vec::new();
    for id in 0..fleet.n_instances as u32 {
        let w = InstanceWorkload::generate(&fleet, id);
        for event in w.events.iter().step_by(7) {
            let sys = SystemContext {
                features: w.spec.system_features(event.concurrency),
            };
            samples.push(plan_to_tree_sample(&event.plan, &sys, event.true_exec_secs));
        }
    }
    println!("  {} training samples", samples.len());
    let config = GlobalModelConfig {
        hidden: 48,
        gcn_layers: 3,
        epochs: 12,
        ..GlobalModelConfig::default()
    };
    let model = GlobalModel::train(&samples, INSTANCE_FEATURE_DIM, &config);
    println!(
        "  trained: {} parameters, final loss {:.4}\n",
        model.n_parameters(),
        model.training_losses.last().copied().unwrap_or(f64::NAN)
    );

    // System contexts for hypothetical clusters (ra3.4xlarge one-hot = slot 1).
    let cluster = |n_nodes: f64| -> SystemContext {
        let mut features = vec![0.0; INSTANCE_FEATURE_DIM];
        features[1] = 1.0; // ra3.4xlarge
        features[4] = n_nodes;
        features[5] = (96.0 * n_nodes).ln_1p();
        features[6] = 3.0; // concurrency
        SystemContext { features }
    };

    println!("What-if: cluster size for the same report query");
    for n_nodes in [2.0, 4.0, 8.0, 16.0] {
        let secs = model.predict(&report_plan(1.0), &cluster(n_nodes));
        println!("  {n_nodes:>4.0} nodes -> predicted {secs:>8.3}s");
    }

    println!("\nWhat-if: data growth on a fixed 4-node cluster");
    for scale in [0.5, 1.0, 2.0, 5.0] {
        let secs = model.predict(&report_plan(scale), &cluster(4.0));
        println!("  {scale:>4.1}x data -> predicted {secs:>8.3}s");
    }

    println!(
        "\n(Trends matter more than absolute numbers: more nodes should not\n\
         increase the prediction; more data should not decrease it.)"
    );

    // Close the loop with the workload manager's burst-sizing decision
    // (paper §2.1): pick the concurrency-scaling cluster size from the
    // what-if predictions under a latency target.
    let candidates: Vec<SizingCandidate> = [2.0, 4.0, 8.0, 16.0]
        .iter()
        .map(|&n| SizingCandidate {
            n_nodes: n as u32,
            predicted_secs: model.predict(&report_plan(1.0), &cluster(n)),
        })
        .collect();
    let policy = SizingPolicy {
        latency_target_secs: Some(60.0),
        startup_secs: 30.0,
        ..SizingPolicy::default()
    };
    match choose_cluster_size(&candidates, &policy) {
        Some(d) => println!(
            "\nburst-cluster sizing under a 60s target: {} nodes \
             (projected {:.1}s, cost {:.0} node-units, target met: {})",
            d.n_nodes, d.projected_latency_secs, d.projected_cost, d.meets_target
        ),
        None => println!("\nburst-cluster sizing: no valid candidate"),
    }
}
