//! Offline subset of the serde API.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the serde surface it uses. Instead of upstream's streaming
//! serializer/deserializer architecture, this implementation routes all
//! (de)serialization through one in-memory tree, [`Value`] — the JSON data
//! model — which the vendored `serde_json` crate prints and parses. The
//! derive macros ([`Serialize`]/[`Deserialize`] via `serde_derive`)
//! generate conversions to and from that tree.
//!
//! Semantics intentionally mirror upstream where this workspace can
//! observe them: field order is declaration order, enums are externally
//! tagged, `Option` fields accept null/missing as `None`, map keys
//! stringify, and `f64` round-trips exactly (shortest-roundtrip printing
//! plus correctly rounded parsing).

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model all serialization flows through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer that fits `i64` (covers every negative and most positives).
    Int(i64),
    /// Integer above `i64::MAX`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element lookup on arrays; `None` otherwise.
    pub fn get_index(&self, index: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(index),
            _ => None,
        }
    }

    /// `Some(u64)` for non-negative integers.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(n) if n >= 0 => Some(n as u64),
            Value::UInt(n) => Some(n),
            _ => None,
        }
    }

    /// `Some(i64)` for integers in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) if n <= i64::MAX as u64 => Some(n as i64),
            _ => None,
        }
    }

    /// `Some(f64)` for any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            Value::Float(x) => Some(x),
            _ => None,
        }
    }

    /// `Some(&str)` for strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(bool)` for booleans.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// `Some(&[Value])` for arrays.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// `Some(entries)` for objects.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    pub fn is_string(&self) -> bool {
        matches!(self, Value::Str(_))
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::UInt(_) | Value::Float(_))
    }

    pub fn is_boolean(&self) -> bool {
        matches!(self, Value::Bool(_))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;
    /// Object member access; missing members index to `Null` (as in
    /// `serde_json`).
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    /// Array element access; out-of-range indexes to `Null`.
    fn index(&self, index: usize) -> &Value {
        self.get_index(index).unwrap_or(&NULL)
    }
}

/// (De)serialization error: a message, optionally with field context.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

pub mod de {
    //! Deserialization traits (upstream-path compatibility).
    //!
    //! Upstream serde distinguishes `Deserialize<'de>` from
    //! `DeserializeOwned`; this subset's data model is always owned, so
    //! they coincide.
    pub use crate::Deserialize as DeserializeOwned;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (stable public API for the macros).
// ---------------------------------------------------------------------------

/// Extracts an object's entries or errors with the target type's name.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], Error> {
    match v {
        Value::Object(entries) => Ok(entries),
        other => Err(Error::custom(format!(
            "expected object for {ty}, got {other:?}"
        ))),
    }
}

/// Extracts an array of exactly `n` elements or errors.
pub fn expect_array<'v>(v: &'v Value, ty: &str, n: usize) -> Result<&'v [Value], Error> {
    match v {
        Value::Array(items) if items.len() == n => Ok(items),
        other => Err(Error::custom(format!(
            "expected {n}-element array for {ty}, got {other:?}"
        ))),
    }
}

/// Looks up and deserializes a field; missing fields read as `Null` (so
/// `Option` fields default to `None`, as with upstream serde).
pub fn de_field<T: Deserialize>(obj: &[(String, Value)], name: &str, ty: &str) -> Result<T, Error> {
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&NULL);
    T::from_value(v).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
}

// ---------------------------------------------------------------------------
// Impls for std types
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {v:?}")))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {v:?}")))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(format!("integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        if *self <= i64::MAX as u64 {
            Value::Int(*self as i64)
        } else {
            Value::UInt(*self)
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_u64()
            .ok_or_else(|| Error::custom(format!("expected u64, got {v:?}")))
    }
}

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for usize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected {N}-element array, got {n}")))
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                let items = expect_array(v, "tuple", LEN)?;
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Map keys: types that stringify losslessly for use as JSON object keys.
pub trait MapKey: Sized {
    /// Key as a string.
    fn to_key(&self) -> String;
    /// Parses a key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! int_key_impls {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(format!("invalid map key {key:?}")))
            }
        }
    )*};
}

int_key_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K, V, S> Serialize for HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
    S: std::hash::BuildHasher,
{
    /// Serializes with keys sorted lexicographically so output is
    /// deterministic regardless of hasher state.
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = expect_object(v, "map")?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(u64::from_value(&u64::MAX.to_value()).unwrap(), u64::MAX);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        let x = 0.1f64 + 0.2;
        assert_eq!(f64::from_value(&x.to_value()).unwrap(), x);
    }

    #[test]
    fn option_null_and_missing() {
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.5)).unwrap(),
            Some(2.5)
        );
        let obj = [];
        let missing: Option<f64> = de_field(&obj, "absent", "T").unwrap();
        assert_eq!(missing, None);
    }

    #[test]
    fn map_round_trip_sorted() {
        let mut m = HashMap::new();
        m.insert(10u64, 1.5f64);
        m.insert(2u64, 2.5);
        let v = m.to_value();
        let entries = v.as_object().unwrap();
        assert_eq!(entries[0].0, "10");
        assert_eq!(entries[1].0, "2");
        let back: HashMap<u64, f64> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v["zzz"].is_null());
        assert!(v[5].is_null());
    }
}
