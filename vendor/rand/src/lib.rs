//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of `rand` it actually uses: [`rngs::StdRng`] seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer and
//! float ranges, and [`seq::SliceRandom::shuffle`]. The generator is
//! xoshiro256** with a SplitMix64 seed expander — fast, high quality, and
//! fully deterministic for a given seed (stream values differ from upstream
//! `rand`'s ChaCha-based `StdRng`, which no test in this workspace relies
//! on).

/// Low-level uniform-bits source. Everything else derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on an empty range, matching upstream behaviour.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is expanded from `seed` with
    /// SplitMix64 (the expansion recommended by the xoshiro authors).
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step: mixes `state` and advances it. Used for seed expansion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state (possible only for adversarial seeds) would be
            // a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    //! Uniform range sampling.
    pub mod uniform {
        use crate::RngCore;

        /// A range that can produce a uniform sample of `T`.
        pub trait SampleRange<T> {
            /// Draws one sample. Panics on an empty range.
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        }

        /// Uniform f64 in [0, 1) with 53 random bits.
        fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        impl SampleRange<f64> for core::ops::Range<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = self.start + unit_f64(rng) * (self.end - self.start);
                // Floating rounding can land exactly on `end`; clamp back.
                if x >= self.end {
                    f64::from_bits(self.end.to_bits() - 1)
                } else {
                    x
                }
            }
        }

        impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + unit_f64(rng) * (hi - lo)
            }
        }

        impl SampleRange<f32> for core::ops::Range<f32> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
                assert!(self.start < self.end, "cannot sample empty range");
                let x = self.start + (unit_f64(rng) as f32) * (self.end - self.start);
                if x >= self.end {
                    f32::from_bits(self.end.to_bits() - 1)
                } else {
                    x
                }
            }
        }

        /// Unbiased integer in [0, span) via Lemire's widening-multiply
        /// rejection method.
        fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
            debug_assert!(span > 0);
            let threshold = span.wrapping_neg() % span;
            loop {
                let x = rng.next_u64();
                let m = (x as u128) * (span as u128);
                if (m as u64) >= threshold {
                    return (m >> 64) as u64;
                }
            }
        }

        macro_rules! int_range_impl {
            ($($t:ty => $wide:ty),* $(,)?) => {$(
                impl SampleRange<$t> for core::ops::Range<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        assert!(self.start < self.end, "cannot sample empty range");
                        let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                        ((self.start as $wide as u64).wrapping_add(below(rng, span))) as $wide as $t
                    }
                }
                impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "cannot sample empty range");
                        let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                        if span == u64::MAX {
                            return rng.next_u64() as $wide as $t;
                        }
                        ((lo as $wide as u64).wrapping_add(below(rng, span + 1))) as $wide as $t
                    }
                }
            )*};
        }

        int_range_impl!(
            u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
            i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
        );
    }
}

pub mod seq {
    //! Slice utilities.
    use super::{distributions::uniform::SampleRange, RngCore};

    /// Random-order operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Uniform Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&x));
            let y: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let k = rng.gen_range(0..10);
            seen[k as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 10 values should appear");
        for _ in 0..1_000 {
            let k = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&k));
        }
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "overwhelmingly unlikely");
    }
}
