//! Offline micro-benchmark harness exposing the criterion API surface this
//! workspace uses: `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`/`iter_batched`, `BenchmarkId`,
//! `BatchSize`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros.
//!
//! Measurement model: each benchmark is calibrated to pick an iteration
//! count whose batch lasts roughly [`TARGET_SAMPLE`], then `sample_size`
//! timed batches are collected and the mean/min/max per-iteration times are
//! printed. Results are also appended to `Criterion::take_results` so a
//! caller (e.g. a scaling bench) can persist them.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock duration for one timed batch.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// How batched setup costs are treated. The offline harness times only the
/// routine, so the variants are equivalent; they exist for API parity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier for a parameterised benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One finished measurement.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    pub mean_ns: f64,
    pub min_ns: f64,
    pub max_ns: f64,
    pub samples: usize,
    pub iters_per_sample: u64,
}

/// Times a single batch of `iters` calls via the given runner.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `iters` calls of `routine`, excluding per-call `setup` cost.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched`, passing the input by reference.
    pub fn iter_batched_ref<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(&mut I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// API parity with upstream; CLI flags are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    /// Drains results accumulated so far (used by benches that persist
    /// measurements to disk).
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    fn run_one(&mut self, name: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until one batch is long enough
        // to time reliably.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let ns = b.elapsed.as_nanos().max(1) as f64 / iters as f64;
            if b.elapsed >= TARGET_SAMPLE / 4 || iters >= 1 << 24 {
                break ns;
            }
            iters = iters.saturating_mul(4);
        };
        let iters_per_sample =
            ((TARGET_SAMPLE.as_nanos() as f64 / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_nanos() as f64 / iters_per_sample as f64);
        }
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
        println!(
            "{:<48} time: [{} {} {}]  ({} samples x {} iters)",
            name,
            format_ns(min),
            format_ns(mean),
            format_ns(max),
            sample_size,
            iters_per_sample
        );
        self.results.push(BenchResult {
            name,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: sample_size,
            iters_per_sample,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} us", ns / 1e3)
    } else {
        format!("{:.4} ns", ns)
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Declares a group runner function calling each target with one shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100u64 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        let results = c.take_results();
        assert_eq!(results.len(), 1);
        assert!(results[0].mean_ns > 0.0);
    }

    #[test]
    fn groups_and_batched() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("f", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
        assert_eq!(c.take_results().len(), 2);
    }
}
