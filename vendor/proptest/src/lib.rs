//! Offline property-testing harness with the subset of the proptest API this
//! workspace uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, range and tuple strategies, `collection::vec`, and
//! `bool::ANY`.
//!
//! Each generated test runs `ProptestConfig::cases` random cases from a
//! deterministic per-test seed (derived from the test name), so failures
//! reproduce across runs. There is no shrinking: a failing case panics with
//! the assertion message and the case index.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Derives a strategy by transforming every generated value.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, map: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, map }
        }
    }

    /// Strategy adaptor created by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    /// A fixed value, cloned for every case.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_range(0u32..2) == 1
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for [`vec`]: `lo..hi` (exclusive), `lo..=hi`, or an
    /// exact length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.end > r.start, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing vectors whose elements come from `element` and
    /// whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-block configuration; only `cases` is honoured.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Outcome of a single generated case.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case did not satisfy a `prop_assume!` precondition.
        Reject,
        /// An assertion failed; carries the failure message.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runs one generated case. Exists so the case closure's parameter type
    /// is pinned by `A` (an immediately-invoked closure with an annotated
    /// return type would not get its argument types inferred).
    pub fn run_case<A, F: FnOnce(A) -> Result<(), TestCaseError>>(
        vals: A,
        case: F,
    ) -> Result<(), TestCaseError> {
        case(vals)
    }

    /// Stable FNV-1a hash of the test name, used as the RNG seed so each
    /// test draws a distinct but reproducible case sequence.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use rand::rngs::StdRng;
    pub use rand::{Rng, SeedableRng};
}

/// Declares property tests. Supports an optional
/// `#![proptest_config(...)]` header followed by one or more
/// `#[test] fn name(pattern in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            use rand::SeedableRng as _;
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::seed_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __rng = rand::rngs::StdRng::seed_from_u64(__seed);
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            // Allow generous headroom for prop_assume! rejections before
            // declaring the strategy unsatisfiable.
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts < __config.cases.saturating_mul(20).max(1000),
                    "proptest: too many rejected cases in {}",
                    stringify!($name)
                );
                let __vals = ( $( ($strat).generate(&mut __rng) ),+ );
                #[allow(unused_parens)]
                let __outcome = $crate::test_runner::run_case(__vals, |( $($arg),+ )| {
                    $body
                    ::std::result::Result::Ok(())
                });
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {}
                    Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case {} of {} failed (seed {:#x}): {}",
                            __accepted, stringify!($name), __seed, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Fails the current case when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fails the current case when the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Rejects (skips) the current case when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn floats_in_range(x in -2.0f64..3.0) {
            prop_assert!((-2.0..3.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(xs in crate::collection::vec(0u64..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_and_assume(pair in (0u32..100, 0u32..100)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
        }

        #[test]
        fn mut_patterns_work(mut xs in crate::collection::vec(-1e3f64..1e3, 1..20)) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for w in xs.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn exact_size_vec(xs in crate::collection::vec(0.0f64..1.0, 6)) {
            prop_assert_eq!(xs.len(), 6);
        }

        #[test]
        fn bool_any_eventually_both(flag in crate::bool::ANY) {
            // Just exercise the strategy; both branches must type-check.
            if flag {
                prop_assert!(flag);
            } else {
                prop_assert!(!flag);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let seed = crate::test_runner::seed_for("abc");
        let mut a = StdRng::seed_from_u64(seed);
        let mut b = StdRng::seed_from_u64(seed);
        let strat = crate::collection::vec(0.0f64..1.0, 3..10);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
