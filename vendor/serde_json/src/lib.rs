//! Offline JSON serialization over the vendored serde [`Value`] tree.
//!
//! Provides the `serde_json` surface this workspace uses: `to_string`,
//! `to_string_pretty`, `to_writer`, `to_writer_pretty`, `from_str`,
//! `from_reader`, `to_value`, the [`json!`] macro, and [`Value`] itself
//! (re-exported from the vendored `serde`).
//!
//! Numbers round-trip exactly: floats print with Rust's shortest-roundtrip
//! `Display` and parse with the stdlib's correctly rounded `f64::from_str`,
//! so `parse(print(x)) == x` bit-for-bit for finite values. Non-finite
//! floats print as `null`, matching upstream `serde_json`.

use serde::Serialize;
use std::fmt::Write as _;
use std::io;

pub use serde::Error;
pub use serde::Value;

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serializes to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes compact JSON into an existing string buffer (appended), so
/// hot paths can reuse one allocation across many messages. The buffer is
/// *not* cleared first; callers decide whether to accumulate or reset.
pub fn to_string_into<T: Serialize + ?Sized>(value: &T, out: &mut String) {
    write_compact(&value.to_value(), out);
}

/// Serializes to a human-readable JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
pub fn to_writer<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Serializes pretty JSON into a writer.
pub fn to_writer_pretty<W: io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::custom(format!("write failed: {e}")))
}

/// Parses a typed value from a JSON string.
pub fn from_str<T: serde::de::DeserializeOwned>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::from_value(&value)
}

/// Parses a typed value from a reader.
pub fn from_reader<R: io::Read, T: serde::de::DeserializeOwned>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader
        .read_to_string(&mut text)
        .map_err(|e| Error::custom(format!("read failed: {e}")))?;
    from_str(&text)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(x: f64, out: &mut String) {
    if x.is_finite() {
        // Rust's Display for f64 is shortest-roundtrip. Keep a float marker
        // ("5" -> "5.0") so the value re-parses as a float — otherwise
        // "-0" would round-trip through the integer path and lose its sign.
        let start = out.len();
        let _ = write!(out, "{x}");
        if !out[start..].contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => write_number(*x, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(item, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::custom("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::custom("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::custom("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape {:?}",
                                other.map(|b| b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the longest run of plain bytes (no quote, no
                    // escape) as one chunk. Validating just the chunk keeps
                    // string parsing linear — validating from `pos` to the
                    // end of input per character would be quadratic in the
                    // document length, which large batched messages hit.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`); leaves pos past them.
    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal. Supports object and array
/// literals with arbitrary serializable expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!({} () $($tt)*) };
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: array literal muncher. Accumulates element expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Finished: no more tokens.
    ([ $($elem:expr,)* ]) => { $crate::Value::Array(vec![$($elem),*]) };
    // Nested array element.
    ([ $($elem:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elem,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    // Nested object element.
    ([ $($elem:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elem,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    // null element.
    ([ $($elem:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elem,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Expression element: munch tokens up to the next top-level comma.
    ([ $($elem:expr,)* ] $($tt:tt)+) => {
        $crate::json_expr_then!{ (json_array_resume [ $($elem,)* ]) () $($tt)+ }
    };
}

/// Internal: continuation for [`json_array!`] after an expression element.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_resume {
    ([ $($elem:expr,)* ] ($($expr:tt)+) $($rest:tt)*) => {
        $crate::json_array!([ $($elem,)* $crate::to_value(&($($expr)+)), ] $($rest)*)
    };
}

/// Internal: object literal muncher. `{ done-entries } (pending-key) rest`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Finished.
    ({ $(($key:expr, $val:expr),)* } ()) => {
        $crate::Value::Object(vec![$(($key.to_string(), $val)),*])
    };
    // Take the next key.
    ({ $($done:tt)* } () $key:literal : $($rest:tt)+) => {
        $crate::json_object!({ $($done)* } ($key) $($rest)+)
    };
    // Trailing comma before end.
    ({ $($done:tt)* } () , ) => { $crate::json_object!({ $($done)* } ()) };
    // Nested object value.
    ({ $(($dk:expr, $dv:expr),)* } ($key:expr) { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $(($dk, $dv),)* ($key, $crate::json!({ $($inner)* })), } () $($($rest)*)?)
    };
    // Nested array value.
    ({ $(($dk:expr, $dv:expr),)* } ($key:expr) [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $(($dk, $dv),)* ($key, $crate::json!([ $($inner)* ])), } () $($($rest)*)?)
    };
    // null value.
    ({ $(($dk:expr, $dv:expr),)* } ($key:expr) null $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $(($dk, $dv),)* ($key, $crate::Value::Null), } () $($($rest)*)?)
    };
    // Expression value: munch tokens up to the next top-level comma.
    ({ $($done:tt)* } ($key:expr) $($tt:tt)+) => {
        $crate::json_expr_then!{ (json_object_resume { $($done)* } ($key)) () $($tt)+ }
    };
}

/// Internal: continuation for [`json_object!`] after an expression value.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_resume {
    ({ $(($dk:expr, $dv:expr),)* } ($key:expr) ($($expr:tt)+) $($rest:tt)*) => {
        $crate::json_object!({ $(($dk, $dv),)* ($key, $crate::to_value(&($($expr)+))), } () $($rest)*)
    };
}

/// Internal: accumulates tokens into an expression until a top-level comma
/// (or end of input), then invokes the given continuation macro with
/// `(expr-tokens) remaining-tokens`.
#[doc(hidden)]
#[macro_export]
macro_rules! json_expr_then {
    // Top-level comma ends the expression; hand back remaining tokens.
    (($k:ident $($kargs:tt)*) ($($acc:tt)+) , $($rest:tt)*) => {
        $crate::$k!{ $($kargs)* ($($acc)+) $($rest)* }
    };
    // End of input ends the expression.
    (($k:ident $($kargs:tt)*) ($($acc:tt)+)) => {
        $crate::$k!{ $($kargs)* ($($acc)+) }
    };
    // Otherwise consume one token tree into the accumulator.
    (($k:ident $($kargs:tt)*) ($($acc:tt)*) $next:tt $($rest:tt)*) => {
        $crate::json_expr_then!{ ($k $($kargs)*) ($($acc)* $next) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_round_trip() {
        let v = json!({
            "a": 1,
            "b": [1.5, 2.5, null],
            "c": {"nested": true},
            "s": "hi\n\"there\"",
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        assert!(text.starts_with("{\"a\":1,"));
    }

    #[test]
    fn to_string_into_appends_without_clearing() {
        let mut buf = String::from("prefix:");
        to_string_into(&json!({"x": 1}), &mut buf);
        assert_eq!(buf, "prefix:{\"x\":1}");
        buf.clear();
        to_string_into(&json!([true]), &mut buf);
        assert_eq!(buf, "[true]");
        assert_eq!(to_string(&json!([true])).unwrap(), buf);
    }

    #[test]
    fn pretty_has_spaced_colon() {
        let text = to_string_pretty(&json!({"x": 1})).unwrap();
        assert!(text.contains("\"x\": 1"), "{text}");
    }

    #[test]
    fn float_round_trip_exact() {
        for &x in &[
            0.1f64,
            1.0 / 3.0,
            6.02e23,
            5.0,
            -0.0,
            1e-300,
            123456789.123456789,
        ] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn expressions_in_json_macro() {
        let xs = [1.0f64, 2.0, 3.0];
        let n = 2u64;
        let v = json!({
            "sum": xs.iter().sum::<f64>(),
            "n": n,
            "pairs": xs.iter().map(|&x| json!({"x": x})).collect::<Vec<_>>(),
            "arr": [n, 7],
        });
        assert_eq!(v["sum"].as_f64(), Some(6.0));
        assert_eq!(v["n"].as_u64(), Some(2));
        assert_eq!(v["pairs"].as_array().unwrap().len(), 3);
        assert_eq!(v["arr"][1].as_u64(), Some(7));
        assert_eq!(v["pairs"][0]["x"].as_f64(), Some(1.0));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: Value = from_str(r#""aé😀b""#).unwrap();
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn integers_stay_integers() {
        let text = to_string(&json!({"version": 1u32})).unwrap();
        assert_eq!(text, "{\"version\":1}");
        let v: Value = from_str("{\"big\":18446744073709551615}").unwrap();
        assert_eq!(v["big"].as_u64(), Some(u64::MAX));
    }
}
