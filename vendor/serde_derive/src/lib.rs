//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! subset. The generated code targets the simplified value-tree data model
//! in the vendored `serde` crate: `Serialize::to_value(&self) -> Value` and
//! `Deserialize::from_value(&Value) -> Result<Self, serde::Error>`.
//!
//! Supported input shapes (everything this workspace derives on):
//! * structs with named fields, including generic type parameters;
//! * tuple structs (one field serializes transparently, newtype-style);
//! * enums with unit and struct variants (externally tagged, like serde).
//!
//! The parser works directly on `proc_macro::TokenStream` — no `syn`,
//! `quote`, or any other crates.io dependency is available offline.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed derive input.
struct Input {
    name: String,
    /// Generic type-parameter names (lifetimes/consts unsupported: unused
    /// by this workspace).
    generics: Vec<String>,
    data: Data,
}

enum Data {
    /// Named fields in declaration order.
    Struct(Vec<String>),
    /// Number of tuple fields.
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(field names)` for struct variants.
    fields: Option<Vec<String>>,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("serde_derive generated invalid Rust")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("serde_derive generated invalid Rust")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    i += 1;

    // Optional generics: collect top-level type-parameter names.
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' => expect_param = false,
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generics on {name}"),
            }
            i += 1;
        }
    }

    let data = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
            other => panic!("serde_derive: malformed struct {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: malformed enum {name}: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for {other} {name}"),
    };

    Input {
        name,
        generics,
        data,
    }
}

/// Parses `field: Type, ...` capturing field names. Skips attributes and
/// visibility; tracks angle-bracket depth so commas inside generic types
/// (e.g. `HashMap<u64, Entry>`) don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push(id.to_string());
                i += 1;
                // Expect `:` then the type; consume to the top-level comma.
                assert!(
                    matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
                    "serde_derive: expected ':' after field {}",
                    fields.last().unwrap()
                );
                i += 1;
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive: unexpected token in fields: {other:?}"),
        }
    }
    fields
}

/// Counts tuple-struct fields (top-level commas + trailing element).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                // Trailing comma adds no field.
                if i + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let fields = match tokens.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        i += 1;
                        Some(parse_named_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        panic!("serde_derive: tuple enum variants unsupported ({name})")
                    }
                    _ => None,
                };
                variants.push(Variant { name, fields });
            }
            other => panic!("serde_derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// `impl<T: serde::Serialize, ...> Trait for Name<T, ...>` header parts.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let params: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (generics, ty) = impl_header(input, "serde::Serialize");
    let body = match &input.data {
        Data::Struct(fields) => {
            let mut s = String::from("let mut __o: Vec<(String, serde::Value)> = Vec::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__o.push((String::from(\"{f}\"), serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("serde::Value::Object(__o)");
            s
        }
        Data::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Unit => format!("serde::Value::Str(String::from(\"{}\"))", input.name),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "Self::{vn} => serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    Some(fields) => {
                        let pat = fields.join(", ");
                        let mut pushes = String::new();
                        for f in fields {
                            pushes.push_str(&format!(
                                "__o.push((String::from(\"{f}\"), serde::Serialize::to_value({f})));\n"
                            ));
                        }
                        arms.push_str(&format!(
                            "Self::{vn} {{ {pat} }} => {{\n\
                             let mut __o: Vec<(String, serde::Value)> = Vec::new();\n\
                             {pushes}\
                             serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Object(__o))])\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} serde::Serialize for {ty} {{\n\
         fn to_value(&self) -> serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let (generics, ty) = impl_header(input, "serde::Deserialize");
    let name = &input.name;
    let body = match &input.data {
        Data::Struct(fields) => {
            let mut s = format!("let __obj = serde::expect_object(__v, \"{name}\")?;\n");
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                s.push_str(&format!(
                    "{f}: serde::de_field(__obj, \"{f}\", \"{name}\")?,\n"
                ));
            }
            s.push_str("})");
            s
        }
        Data::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        Data::Tuple(n) => {
            let mut s = format!(
                "let __arr = serde::expect_array(__v, \"{name}\", {n})?;\n"
            );
            let items: Vec<String> = (0..*n)
                .map(|k| format!("serde::Deserialize::from_value(&__arr[{k}])?"))
                .collect();
            s.push_str(&format!("Ok({name}({}))", items.join(", ")));
            s
        }
        Data::Unit => format!(
            "match __v {{\n\
             serde::Value::Str(s) if s == \"{name}\" => Ok({name}),\n\
             _ => Err(serde::Error::custom(format!(\"expected unit struct {name}, got {{__v:?}}\"))),\n\
             }}"
        ),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "serde::Value::Str(s) if s == \"{vn}\" => Ok(Self::{vn}),\n"
                    )),
                    Some(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            inits.push_str(&format!(
                                "{f}: serde::de_field(__inner, \"{f}\", \"{name}::{vn}\")?,\n"
                            ));
                        }
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __inner = serde::expect_object(__payload, \"{name}::{vn}\")?;\n\
                             Ok(Self::{vn} {{ {inits} }})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 {unit_arms}\
                 serde::Value::Object(__tag) if __tag.len() == 1 => {{\n\
                 let (__variant, __payload) = &__tag[0];\n\
                 match __variant.as_str() {{\n\
                 {data_arms}\
                 __other => Err(serde::Error::custom(format!(\"unknown variant {{__other}} of {name}\"))),\n\
                 }}\n\
                 }}\n\
                 _ => Err(serde::Error::custom(format!(\"expected {name}, got {{__v:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} serde::Deserialize for {ty} {{\n\
         fn from_value(__v: &serde::Value) -> Result<Self, serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
