#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and the
# full test suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings
cargo test -q --workspace
