#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints (warnings are errors), and the
# full test suite. Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo clippy --workspace -- -D warnings

# Workspace invariants (panic-freedom, determinism, lock order, protocol
# exhaustiveness, tainted-allocation bounds, event-loop liveness) — cheap,
# so it runs before the test suite. Gated against the committed baseline:
# only NEW findings fail the run, so a finding backlog can be burned down
# incrementally without masking regressions. The --json report is written
# to a scratch path and diffed; the committed results/lint_report.json is
# only ever updated deliberately.
cargo build -q --release -p stage-lint
./target/release/stage-lint --workspace --baseline results/lint_report.json \
    --json --root .
git diff --quiet -- results/lint_report.json || {
    echo "check.sh: stage-lint --json changed results/lint_report.json —" \
         "inspect and commit the new report (or fix the findings)" >&2
    exit 1
}

# Parse-cache smoke: a cold pass (cache purged) and a warm pass must agree
# on finding counts, and the warm pass must beat 2x the recorded lexical
# baseline — both asserted by --bench itself (exit 1 on divergence).
# Timing lands in results/bench_lint.json; only the invariant is gated
# here, not the absolute numbers.
./target/release/stage-lint --workspace --bench --root .
git checkout -q -- results/bench_lint.json 2>/dev/null || true

cargo test -q --workspace

# Serving smoke test: boot stage-serve on an ephemeral port, run one
# predict→observe→predict round-trip, drain, and stop. Bounded so a hung
# accept loop can never wedge CI.
cargo build -q --release -p stage-serve
timeout 120 ./target/release/stage-serve --smoke

# Batched-inference smoke: correctness only (one full-width PredictBatch
# answer must be bit-identical, index by index, to the scalar verb).
# Throughput ranking is deliberately not asserted — single-core CI cannot
# honestly rank batch against scalar.
cargo build -q --release -p stage-bench --bin bench_predict_batch
timeout 120 ./target/release/bench_predict_batch --smoke

# Loadgen smoke on BOTH wire codecs: CI-sized round-trip runs that also
# cross-check the other codec answers bit-identically and reconcile the
# server's counters against the client's ledger. Throughput is not
# asserted here — only correctness.
cargo build -q --release -p stage-bench --bin loadgen
timeout 120 ./target/release/loadgen --smoke --codec binary --out /tmp/bench_serve_smoke_binary.json
timeout 120 ./target/release/loadgen --smoke --codec json --out /tmp/bench_serve_smoke_json.json

# Artefact-store smoke: the serde and mmap restore paths must produce
# replicas that answer every probe bit-identically (f64::to_bits) with
# equal routing counters. Timing claims live in the full bench run, not
# here.
cargo build -q --release -p stage-bench --bin bench_store
timeout 120 ./target/release/bench_store --smoke

# Chaos smoke: the six-phase fault-injection soak at CI scale (including
# the workload step change that must trip the drift sentinel). Asserts
# zero server panics, zero lost observes, and that every injected fault is
# accounted for by a degraded-mode counter (DESIGN.md §10). The injection
# caps quiesce every schedule, so the bound is generous, not load-bearing.
cargo build -q --release -p stage-bench --bin chaos_soak
timeout 300 ./target/release/chaos_soak --smoke --out /tmp/bench_chaos_smoke.json

# Drift smoke: the shift/detect/force-retrain/recover episode against
# StagePredictor directly (DESIGN.md §15). Gates detection on the
# headline shift factor, post-retrain error below pre-retrain, interval
# coverage within two points of nominal, and zero steady false alarms.
cargo build -q --release -p stage-bench --bin bench_drift
timeout 300 ./target/release/bench_drift --smoke --out /tmp/bench_drift_smoke.json
